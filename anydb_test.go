package anydb_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anydb"
)

var bg = context.Background()

func open(t *testing.T) *anydb.Cluster {
	t.Helper()
	c, err := anydb.Open(anydb.Config{
		Warehouses: 4, Districts: 2, CustomersPerDistrict: 50,
		InitialOrdersPerDist: 30, Items: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestOpenDefaults(t *testing.T) {
	c := open(t)
	st := c.Stats()
	if st.Servers != 2 || st.ACs != 8 || st.Warehouses != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOpenRejectsTinyTopology(t *testing.T) {
	if _, err := anydb.Open(anydb.Config{Servers: 1}); err == nil {
		t.Fatal("1-server cluster accepted")
	}
}

func TestPaymentAndVerify(t *testing.T) {
	c := open(t)
	ok, err := c.Payment(anydb.Payment{Warehouse: 1, District: 2, Customer: 3, Amount: 10})
	if err != nil || !ok {
		t.Fatalf("payment: ok=%v err=%v", ok, err)
	}
	ok, err = c.Payment(anydb.Payment{
		Warehouse: 0, District: 1, ByLastName: true, LastName: "BARBAROUGHT", Amount: 5,
	})
	if err != nil || !ok {
		t.Fatalf("by-last payment: ok=%v err=%v", ok, err)
	}
	if _, err := c.Payment(anydb.Payment{
		Warehouse: 0, District: 1, ByLastName: true, LastName: "NOTANAME",
	}); err == nil {
		t.Fatal("bad last name accepted")
	}
	// Remote payment (customer at another warehouse).
	ok, err = c.Payment(anydb.Payment{
		Warehouse: 0, District: 1, Customer: 2, Amount: 7,
		CustomerWarehouse: 3, CustomerDistrict: 2,
	})
	if err != nil || !ok {
		t.Fatalf("remote payment: ok=%v err=%v", ok, err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderCommitAndRollback(t *testing.T) {
	c := open(t)
	ok, err := c.NewOrder(anydb.NewOrder{
		Warehouse: 2, District: 1, Customer: 4,
		Lines: []anydb.OrderLine{{Item: 1, Qty: 2, SupplyWarehouse: 2}},
	})
	if err != nil || !ok {
		t.Fatalf("new-order: ok=%v err=%v", ok, err)
	}
	ok, err = c.NewOrder(anydb.NewOrder{
		Warehouse: 2, District: 1, Customer: 4,
		Lines: []anydb.OrderLine{{Item: -5, Qty: 1, SupplyWarehouse: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("invalid item committed")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPayments(t *testing.T) {
	c := open(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ok, err := c.Payment(anydb.Payment{
					Warehouse: g % 4, District: 1 + i%2,
					Customer: 1 + i%50, Amount: 1,
				})
				if err != nil || !ok {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicySwitchUnderLoad(t *testing.T) {
	c := open(t)
	// Interleave policy switches with bursts of skewed payments.
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					c.Payment(anydb.Payment{
						Warehouse: 0, District: 1, Customer: 1 + i%50, Amount: 2,
					})
				}
			}()
		}
		wg.Wait()
		pol := anydb.StreamingCC
		if round%2 == 1 {
			pol = anydb.SharedNothing
		}
		if err := c.SetPolicy(bg, pol); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestPolicySwitchMidFlight reroutes while transactions are genuinely
// in flight on the real engine: worker goroutines never pause while a
// switcher flips the policy. Every submission must resolve exactly once
// (no lost, no double-committed transactions) and the TPC-C consistency
// conditions must hold at the end.
func TestPolicySwitchMidFlight(t *testing.T) {
	c := open(t)
	const workers, perWorker = 8, 60
	var committed, rolledBack int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Contended traffic (warehouse 0) interleaved with
				// spread traffic, plus a rollback every few txns.
				if i%5 == 4 {
					ok, err := c.NewOrder(anydb.NewOrder{
						Warehouse: 0, District: 1, Customer: 1 + i%50,
						Lines: []anydb.OrderLine{{Item: -1, Qty: 1, SupplyWarehouse: 0}},
					})
					if err != nil {
						errs <- err
						return
					}
					if ok {
						errs <- fmt.Errorf("invalid item committed")
						return
					}
					atomic.AddInt64(&rolledBack, 1)
					continue
				}
				ok, err := c.Payment(anydb.Payment{
					Warehouse: (g * i) % 4, District: 1 + i%2,
					Customer: 1 + i%50, Amount: 1,
				})
				if err != nil || !ok {
					errs <- fmt.Errorf("payment ok=%v err=%v", ok, err)
					return
				}
				atomic.AddInt64(&committed, 1)
			}
		}(g)
	}
	switching := make(chan struct{})
	go func() {
		defer close(switching)
		for round := 0; round < 10; round++ {
			pol := anydb.StreamingCC
			if round%2 == 1 {
				pol = anydb.SharedNothing
			}
			if err := c.SetPolicy(bg, pol); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-switching
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	wantCommitted := int64(workers * perWorker * 4 / 5)
	if committed != wantCommitted || rolledBack != int64(workers*perWorker/5) {
		t.Fatalf("committed=%d rolledBack=%d, want %d/%d",
			committed, rolledBack, wantCommitted, workers*perWorker/5)
	}
	if n := c.Stats().UnmatchedDone; n != 0 {
		t.Fatalf("%d transactions resolved without a waiter (lost or double-committed)", n)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoAdaptSwitchesOnSkew runs the self-driving cluster under fully
// skewed traffic and waits for the controller to reroute to streaming
// CC on its own.
func TestAutoAdaptSwitchesOnSkew(t *testing.T) {
	c, err := anydb.Open(anydb.Config{
		Warehouses: 4, Districts: 2, CustomersPerDistrict: 50,
		InitialOrdersPerDist: 30, Items: 40,
		AutoAdapt: true, AdaptWindow: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The controller owns the routing: manual switches are rejected.
	if err := c.SetPolicy(bg, anydb.StreamingCC); err == nil {
		t.Fatal("manual SetPolicy accepted on a self-driving cluster")
	}

	deadline := time.Now().Add(10 * time.Second)
	var switched bool
	for !switched && time.Now().Before(deadline) {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					c.Payment(anydb.Payment{
						Warehouse: 0, District: 1, Customer: 1 + (g*100+i)%50, Amount: 1,
					})
				}
			}(g)
		}
		wg.Wait()
		for _, ev := range c.AdaptationLog() {
			if ev.From == anydb.SharedNothing && ev.To == anydb.StreamingCC {
				switched = true
			}
		}
	}
	if !switched {
		t.Fatalf("controller never switched to streaming CC; log: %+v", c.AdaptationLog())
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoAdaptGrowsForAnalytics checks the elasticity half of the
// loop: analytical load makes the controller add a server.
func TestAutoAdaptGrowsForAnalytics(t *testing.T) {
	c, err := anydb.Open(anydb.Config{
		Warehouses: 4, Districts: 2, CustomersPerDistrict: 50,
		InitialOrdersPerDist: 30, Items: 40, AutoAdapt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := c.Stats().Servers
	if _, err := c.OpenOrders(bg); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Servers == before && time.Now().Before(deadline) {
		// The grow decision rides the signal stream; a little OLTP
		// traffic keeps it flowing.
		c.Payment(anydb.Payment{Warehouse: 0, District: 1, Customer: 1, Amount: 1})
		time.Sleep(time.Millisecond)
	}
	if got := c.Stats().Servers; got != before+1 {
		t.Fatalf("servers = %d, want %d (one elastic grow)", got, before+1)
	}
	var grew bool
	for _, ev := range c.AdaptationLog() {
		if ev.Grew {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("no grow event in log: %+v", c.AdaptationLog())
	}
	// Analytics keeps working on the grown cluster.
	if _, err := c.OpenOrders(bg); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingCCCorrectness(t *testing.T) {
	c := open(t)
	if err := c.SetPolicy(bg, anydb.StreamingCC); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Payment(anydb.Payment{
					Warehouse: 0, District: 1, Customer: 1 + (g*50+i)%50, Amount: 3,
				})
			}
		}(g)
	}
	wg.Wait()
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenOrdersQuery(t *testing.T) {
	c := open(t)
	rows, err := c.OpenOrders(bg)
	if err != nil {
		t.Fatal(err)
	}
	if rows <= 0 {
		t.Fatalf("rows = %d, want > 0", rows)
	}
	// Beamed and unbeamed agree.
	rows2, err := c.OpenOrdersOpts(bg, anydb.QueryOptions{Beam: false})
	if err != nil {
		t.Fatal(err)
	}
	if rows2 != rows {
		t.Fatalf("beam on/off disagree: %d vs %d", rows, rows2)
	}
}

func TestBeamingOverlapsCompile(t *testing.T) {
	c, err := anydb.Open(anydb.Config{
		Warehouses: 4, Districts: 6, CustomersPerDistrict: 400,
		InitialOrdersPerDist: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const compile = 80 * time.Millisecond
	c.OpenOrdersOpts(bg, anydb.QueryOptions{Beam: false}) // warm-up

	start := time.Now()
	rows1, err := c.OpenOrdersOpts(bg, anydb.QueryOptions{Beam: false, CompileDelay: compile})
	if err != nil {
		t.Fatal(err)
	}
	unbeamed := time.Since(start)

	start = time.Now()
	rows2, err := c.OpenOrdersOpts(bg, anydb.QueryOptions{Beam: true, CompileDelay: compile})
	if err != nil {
		t.Fatal(err)
	}
	beamed := time.Since(start)

	if rows1 != rows2 {
		t.Fatalf("results differ: %d vs %d", rows1, rows2)
	}
	if beamed >= unbeamed {
		t.Logf("note: beamed %v vs unbeamed %v — overlap not visible at this scale", beamed, unbeamed)
	}
}

func TestOLTPWithConcurrentOLAP(t *testing.T) {
	c := open(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if _, err := c.OpenOrders(bg); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		c.Payment(anydb.Payment{Warehouse: i % 4, District: 1, Customer: 1 + i%50, Amount: 1})
	}
	<-done
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAddServer(t *testing.T) {
	c := open(t)
	before, err := c.OpenOrders(bg)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.AddServer(4); n != 4 {
		t.Fatalf("AddServer = %d", n)
	}
	if c.Stats().Servers != 3 {
		t.Fatal("server count did not grow")
	}
	after, err := c.OpenOrders(bg)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("query result changed after scale-out: %d vs %d", before, after)
	}
}

func TestCloseIdempotentAndRejects(t *testing.T) {
	c := open(t)
	c.Close()
	c.Close()
	if _, err := c.Payment(anydb.Payment{Warehouse: 0, District: 1, Customer: 1, Amount: 1}); err == nil {
		t.Fatal("payment accepted on closed cluster")
	}
	if _, err := c.OpenOrders(bg); err == nil {
		t.Fatal("query accepted on closed cluster")
	}
	if err := c.SetPolicy(bg, anydb.StreamingCC); err == nil {
		t.Fatal("SetPolicy accepted on closed cluster")
	}
}

func TestPolicyString(t *testing.T) {
	want := map[anydb.Policy]string{
		anydb.SharedNothing: "shared-nothing",
		anydb.NaiveIntra:    "naive-intra",
		anydb.PreciseIntra:  "precise-intra",
		anydb.StreamingCC:   "streaming-cc",
	}
	if len(anydb.Policies()) != len(want) {
		t.Fatalf("Policies() = %v", anydb.Policies())
	}
	for _, p := range anydb.Policies() {
		if p.String() != want[p] {
			t.Errorf("policy %d = %q, want %q", int(p), p.String(), want[p])
		}
	}
	// Regression: String used to report "streaming-cc" for every
	// non-SharedNothing value.
	if anydb.NaiveIntra.String() == "streaming-cc" || anydb.PreciseIntra.String() == "streaming-cc" {
		t.Fatal("intra-txn policies stringify as streaming-cc")
	}
}

func TestSQLQueryCount(t *testing.T) {
	c := open(t)
	var n int64
	if err := c.QueryRow(bg, "SELECT COUNT(*) FROM district").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 4*2 { // 4 warehouses × 2 districts
		t.Fatalf("district count = %d, want 8", n)
	}
	// The deprecated QueryAll shim preserves the old scalar-count shape.
	sn, rows, err := c.QueryAll(bg, "SELECT COUNT(*) FROM district")
	if err != nil {
		t.Fatal(err)
	}
	if sn != n || rows != nil {
		t.Fatalf("QueryAll count = (%d, %v), want (%d, nil)", sn, rows, n)
	}
}

func TestSQLQueryJoinMatchesOpenOrders(t *testing.T) {
	c := open(t)
	want, err := c.OpenOrders(bg)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	err = c.QueryRow(bg, `SELECT COUNT(*)
		FROM customer
		JOIN orders ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		JOIN new_order ON orders.o_w_id = new_order.no_w_id
			AND orders.o_d_id = new_order.no_d_id
			AND orders.o_id = new_order.no_o_id
		WHERE c_state LIKE 'A%' AND o_entry_d >= 2007`).Scan(&got)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("SQL count %d != OpenOrders %d", got, want)
	}
}

func TestSQLQueryProjection(t *testing.T) {
	c := open(t)
	rows, err := c.Query(bg, "SELECT c_id, c_last FROM customer WHERE c_w_id = 1 AND c_d_id = 1 AND c_id <= 2 ORDER BY c_id")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "c_id" || cols[1] != "c_last" {
		t.Fatalf("columns = %v", cols)
	}
	var got []int64
	for rows.Next() {
		var id int64
		var last string
		if err := rows.Scan(&id, &last); err != nil {
			t.Fatal(err)
		}
		if last == "" {
			t.Fatal("empty last name")
		}
		got = append(got, id)
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ids = %v, want [1 2]", got)
	}
	if rows.Truncated() {
		t.Fatal("tiny result truncated")
	}
}

func TestSQLQueryGroupedAggregate(t *testing.T) {
	c := open(t)
	rows, err := c.Query(bg, `SELECT o_d_id, COUNT(*), AVG(o_ol_cnt) FROM orders
		GROUP BY o_d_id ORDER BY o_d_id`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var districts []int64
	var total int64
	for rows.Next() {
		var d, n int64
		var avg float64
		if err := rows.Scan(&d, &n, &avg); err != nil {
			t.Fatal(err)
		}
		if avg <= 0 {
			t.Fatalf("district %d avg = %v", d, avg)
		}
		districts = append(districts, d)
		total += n
	}
	if len(districts) != 2 || districts[0] != 1 || districts[1] != 2 {
		t.Fatalf("districts = %v, want [1 2]", districts)
	}
	// open() sizes the DB at 4 warehouses × 2 districts × 30 initial
	// orders per district.
	if total != 4*2*30 {
		t.Fatalf("total orders = %d, want 240", total)
	}
}

func TestSQLQueryErrors(t *testing.T) {
	c := open(t)
	if _, err := c.Query(bg, "SELECT COUNT(*) FROM nosuch"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := c.Query(bg, "this is not sql"); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := c.QueryRow(bg, "SELECT COUNT(*) FROM nosuch").Scan(new(int64)); err == nil {
		t.Fatal("QueryRow deferred no error")
	}
	// QueryRow over an empty result reports ErrNoRows.
	err := c.QueryRow(bg, "SELECT c_id FROM customer WHERE c_id = 999999").Scan(new(int64))
	if !errors.Is(err, anydb.ErrNoRows) {
		t.Fatalf("err = %v, want ErrNoRows", err)
	}
}

func TestOpenRejectsTinyCores(t *testing.T) {
	// Regression: CoresPerServer < 4 used to panic indexing the control
	// server's role ACs instead of returning an error.
	for _, cores := range []int{1, 2, 3} {
		if _, err := anydb.Open(anydb.Config{CoresPerServer: cores}); err == nil {
			t.Fatalf("CoresPerServer=%d accepted", cores)
		}
	}
	c, err := anydb.Open(anydb.Config{CoresPerServer: 4, Warehouses: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// TestAllPoliciesVerifyUnderLoad drives concurrent mixed traffic under
// each of the four §3 policies — all selectable through the public API —
// and checks the TPC-C consistency conditions after every run.
func TestAllPoliciesVerifyUnderLoad(t *testing.T) {
	for _, pol := range anydb.Policies() {
		t.Run(pol.String(), func(t *testing.T) {
			c := open(t)
			if err := c.SetPolicy(bg, pol); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 4)
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						if i%4 == 3 {
							ok, err := c.NewOrder(anydb.NewOrder{
								Warehouse: (g + i) % 4, District: 1 + i%2, Customer: 1 + i%50,
								Lines: []anydb.OrderLine{{Item: i % 40, Qty: 1, SupplyWarehouse: (g + i) % 4}},
							})
							if err != nil || !ok {
								errs <- fmt.Errorf("%v new-order ok=%v err=%v", pol, ok, err)
								return
							}
							continue
						}
						// Contended traffic: half the payments hammer
						// warehouse 0.
						w := (g * i) % 4
						if i%2 == 0 {
							w = 0
						}
						ok, err := c.Payment(anydb.Payment{
							Warehouse: w, District: 1 + i%2, Customer: 1 + i%50, Amount: 1,
						})
						if err != nil || !ok {
							errs <- fmt.Errorf("%v payment ok=%v err=%v", pol, ok, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if n := c.Stats().UnmatchedDone; n != 0 {
				t.Fatalf("UnmatchedDone = %d", n)
			}
			if err := c.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSubmitPipelined keeps hundreds of transactions in flight from a
// single session and resolves them out of order.
func TestSubmitPipelined(t *testing.T) {
	c := open(t)
	const n = 300
	futs := make([]*anydb.Future, 0, n)
	for i := 0; i < n; i++ {
		f, err := c.SubmitPayment(bg, anydb.Payment{
			Warehouse: i % 4, District: 1 + i%2, Customer: 1 + i%50, Amount: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	// Wait newest-first to exercise out-of-order resolution.
	for i := len(futs) - 1; i >= 0; i-- {
		ok, err := futs[i].Wait(bg)
		if err != nil || !ok {
			t.Fatalf("future %d: ok=%v err=%v", i, ok, err)
		}
	}
	if n := c.Stats().UnmatchedDone; n != 0 {
		t.Fatalf("UnmatchedDone = %d", n)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitCanceledWaitDrainsCleanly is the cancellation contract: a
// canceled Wait returns within its deadline instead of blocking until
// Close, the abandoned transactions still complete (no leaked inflight
// count, UnmatchedDone stays 0), and the cluster drains and verifies
// cleanly afterwards.
func TestSubmitCanceledWaitDrainsCleanly(t *testing.T) {
	c := open(t)
	const n = 400
	futs := make([]*anydb.Future, 0, n)
	for i := 0; i < n; i++ {
		f, err := c.SubmitPayment(bg, anydb.Payment{
			Warehouse: 0, District: 1, Customer: 1 + i%50, Amount: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	ctx, cancel := context.WithCancel(bg)
	cancel()
	start := time.Now()
	var canceled int
	for _, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			canceled++
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled waits took %v — they must not block until Close", elapsed)
	}
	t.Logf("%d/%d waits returned ctx.Err()", canceled, n)
	// The abandoned transactions drain through the normal accounting: a
	// policy switch (which waits for inflight == 0) must go through.
	if err := c.SetPolicy(bg, anydb.StreamingCC); err != nil {
		t.Fatal(err)
	}
	if n := c.Stats().UnmatchedDone; n != 0 {
		t.Fatalf("UnmatchedDone = %d after abandoning waits", n)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// The cluster stays fully usable.
	ok, err := c.Payment(anydb.Payment{Warehouse: 1, District: 1, Customer: 1, Amount: 1})
	if err != nil || !ok {
		t.Fatalf("post-cancel payment: ok=%v err=%v", ok, err)
	}
}

func TestQueryCanceledPromptly(t *testing.T) {
	c := open(t)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	start := time.Now()
	_, err := c.OpenOrdersOpts(ctx, anydb.QueryOptions{Beam: true, CompileDelay: 500 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled query returned after %v", elapsed)
	}
	if err == nil {
		t.Fatal("canceled query reported success")
	}
	// The abandoned query completes in the background; the cluster keeps
	// answering.
	rows, err := c.OpenOrders(bg)
	if err != nil || rows <= 0 {
		t.Fatalf("post-cancel query: rows=%d err=%v", rows, err)
	}
	if _, err := c.Query(ctx, "SELECT COUNT(*) FROM district"); err == nil {
		t.Fatal("canceled SQL query reported success")
	}
	var n int64
	if err := c.QueryRow(bg, "SELECT COUNT(*) FROM district").Scan(&n); err != nil || n != 8 {
		t.Fatalf("post-cancel SQL: n=%d err=%v", n, err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestEventsSubscription receives controller decisions as they are
// applied, without polling AdaptationLog.
func TestEventsSubscription(t *testing.T) {
	c, err := anydb.Open(anydb.Config{
		Warehouses: 4, Districts: 2, CustomersPerDistrict: 50,
		InitialOrdersPerDist: 30, Items: 40,
		AutoAdapt: true, AdaptWindow: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events := c.Events(bg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Payment(anydb.Payment{
					Warehouse: 0, District: 1, Customer: 1 + (g*100+i)%50, Amount: 1,
				})
			}
		}(g)
	}
	var ev anydb.AdaptationEvent
	select {
	case ev = <-events:
	case <-time.After(15 * time.Second):
		close(stop)
		wg.Wait()
		t.Fatalf("no adaptation event delivered; log: %+v", c.AdaptationLog())
	}
	close(stop)
	wg.Wait()
	if ev.From == ev.To && !ev.Grew {
		t.Fatalf("empty event: %+v", ev)
	}
	// The same event must be in the poll-style log (compatibility).
	var inLog bool
	for _, le := range c.AdaptationLog() {
		if le.From == ev.From && le.To == ev.To && le.Reason == ev.Reason {
			inLog = true
		}
	}
	if !inLog {
		t.Fatalf("event %+v missing from AdaptationLog", ev)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Close closes subscriber channels.
	select {
	case _, ok := <-events:
		if ok {
			return // a buffered event is fine; the close follows
		}
	case <-time.After(5 * time.Second):
		t.Fatal("events channel not closed by Close")
	}
}

// TestPolicySwitchDrainsQueries: a policy switch must not land while an
// analytical query is mid-flight (under the fine-grained policies writes
// leave the partition owners, so a straddling scan would race them). A
// deadline-bounded SetPolicy gives up instead of waiting out the query.
func TestPolicySwitchDrainsQueries(t *testing.T) {
	c := open(t)
	qdone := make(chan error, 1)
	go func() {
		_, err := c.OpenOrdersOpts(bg, anydb.QueryOptions{Beam: true, CompileDelay: 600 * time.Millisecond})
		qdone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the query reach the QO

	// A switch on a tight deadline must abandon the drain with the old
	// routing intact, not reroute under the scan.
	short, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	if err := c.SetPolicy(short, anydb.PreciseIntra); err == nil {
		t.Fatal("SetPolicy landed while a query was in flight")
	}

	// An unbounded switch waits the query out, then lands.
	start := time.Now()
	if err := c.SetPolicy(bg, anydb.PreciseIntra); err != nil {
		t.Fatal(err)
	}
	if err := <-qdone; err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("switch landed after %v — before the 600ms query drained", elapsed)
	}
	ok, err := c.Payment(anydb.Payment{Warehouse: 0, District: 1, Customer: 1, Amount: 1})
	if err != nil || !ok {
		t.Fatalf("payment under precise-intra: ok=%v err=%v", ok, err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleWaitPanics: a consumed (pooled) future must fail fast on a
// second Wait instead of silently stealing another session's result.
func TestDoubleWaitPanics(t *testing.T) {
	c := open(t)
	f, err := c.SubmitPayment(bg, anydb.Payment{Warehouse: 0, District: 1, Customer: 1, Amount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := f.Wait(bg); err != nil || !ok {
		t.Fatalf("first wait: ok=%v err=%v", ok, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Wait on a consumed future did not panic")
		}
	}()
	f.Wait(bg)
}

package anydb

import (
	"context"
	"math/bits"
	"sync/atomic"
	"unsafe"

	"anydb/internal/tpcc"
)

// This file is the cluster's submission plane: the accounting every
// Submit*/Query entry and completion passes through, and the epoch gate
// a policy switch (or Close, or Verify) uses to quiesce the cluster.
//
// The paper's premise (§2) is that an architecture shift is
// instantaneous because state never moves; the client entry matches
// that by making the steady-state path contention-free. An uncontended
// submission performs no mutex lock/unlock at all:
//
//   - in-flight accounting is one atomic add on a goroutine-affine,
//     cache-line-padded shard (and one atomic sub at completion);
//   - the open/draining decision is one atomic pointer load plus one
//     flag load on the current epoch;
//   - transaction ids come from an atomic counter, and the completion
//     rendezvous needs no shared lookup table at all — the *Future
//     rides the event plane as an opaque client token and comes back
//     on the DoneInfo.
//
// A drain (SetPolicy, Verify, Close) closes the current epoch with one
// flag store: submitters that race in observe the flag after their
// increment (sequentially consistent, Dekker-style), back out, and park
// on the epoch's reopen channel — so the drainer's counter sum can
// never miss an admitted submission, and a submitter can never slip
// under a drain. Completions keep decrementing; each decrement that
// observes a closed epoch pings the drainer, which re-checks the sum.
// When the sum hits zero the drainer reconfigures and publishes a fresh
// open epoch, releasing the gate — the drain-or-reject guarantee
// (including ErrClosed once Close has begun) of the old mutex plane,
// kept verbatim, without the mutex.
//
// Live repartitioning (Cluster.Rebalance, the controller's Move
// decisions) reuses the same epoch-gate pattern at PARTITION
// granularity: alongside its shard counter, every entry also counts
// against the warehouses its work touches (a bitmask — one or two bits
// for a transaction, the dedicated query bit for analytics). A handoff
// publishes a moveGate naming the moving warehouse's bits; submitters
// whose mask overlaps back out and park exactly like an epoch drain,
// while everything else keeps flowing untouched. Once the per-warehouse
// sum reaches zero, no in-flight segment can touch the moving partition
// anymore: the storage handoff and the atomic topology-snapshot publish
// happen in that quiet window, so no message ever targets a mid-move
// partition — and the rest of the cluster never notices.

// submitShard is one padded in-flight counter. Padding keeps each
// counter on its own cache line so parallel submitters on different
// shards never false-share.
type submitShard struct {
	n atomic.Int64
	_ [56]byte
}

// whSlots is the width of the per-shard warehouse-count row: one slot
// per warehouse bit. Warehouses 0..62 get their own bit; everything
// above — and all analytical queries, which touch every partition —
// shares the top bit, so gating there is conservative, never unsound.
const whSlots = 64

// queryMask is the warehouse mask of an analytical query: the shared
// top bit. A partition drain always includes it (scans run at the
// partition owners), and warehouses ≥ 63 fold onto it too.
const queryMask = uint64(1) << (whSlots - 1)

// whBit returns warehouse w's mask bit.
func whBit(w int) uint64 {
	if w >= whSlots-1 {
		return queryMask
	}
	return uint64(1) << w
}

// txnMask returns the warehouse bitmask of everything t touches —
// exactly the partitions its compiled op program writes (home plus the
// customer's warehouse for payments, home plus each supply warehouse
// for new-orders).
func txnMask(t *tpcc.Txn) uint64 {
	if t.Kind == tpcc.TxnPayment {
		return whBit(t.Payment.W) | whBit(t.Payment.CW)
	}
	m := whBit(t.NewOrder.W)
	for _, l := range t.NewOrder.Lines {
		m |= whBit(l.SupplyW)
	}
	return m
}

// moveGate is one partition handoff in progress: entries whose
// warehouse mask overlaps park on reopen; everything else flows.
// Published via Cluster.gate; nil means no move in progress.
type moveGate struct {
	mask   uint64
	reopen chan struct{}
}

// submitEpoch is one open interval of the submission plane. The shard
// counters are global (cluster-lifetime) — an epoch only carries the
// policy submissions route under, the draining flag, and the gate
// released when a successor epoch is published.
type submitEpoch struct {
	policy Policy
	// closed flips once a drain begins; it never unflips (reopening
	// publishes a successor epoch instead).
	closed atomic.Bool
	// reopen is closed when the successor epoch is published. A closed
	// epoch that is never succeeded (Close) leaves waiters to the
	// cluster-wide closedCh.
	reopen chan struct{}
}

func newEpoch(p Policy) *submitEpoch {
	return &submitEpoch{policy: p, reopen: make(chan struct{})}
}

// shardIdx picks the calling goroutine's submission shard. The address
// of a stack variable is a cheap goroutine fingerprint (stacks are
// distinct allocations, ≥2KiB apart), giving each session goroutine a
// stable shard without runtime hooks; correctness never depends on the
// mapping — enter records the index it incremented and the completion
// decrements exactly that shard.
func (c *Cluster) shardIdx() int32 {
	var marker byte
	return int32(uintptr(unsafe.Pointer(&marker))>>10) & c.shardMask
}

// addInflight adjusts shard si's total and each per-warehouse counter
// named by mask. The per-warehouse row lives at si*whSlots; it shares
// the shard's write locality (the same goroutines that write the shard
// counter write its row), so the partition-granularity accounting adds
// one or two uncontended atomic adds to the hot path, no locks.
func (c *Cluster) addInflight(si int32, mask uint64, delta int64) {
	c.shards[si].n.Add(delta)
	base := int(si) * whSlots
	for m := mask; m != 0; m &= m - 1 {
		c.whCounts[base+bits.TrailingZeros64(m)].Add(delta)
	}
}

// enter joins the current epoch, returning it with one in-flight count
// held on shard si for the given warehouse mask. The uncontended path
// is lock-free: a few atomic adds, three atomic loads. While an epoch
// drain — or a partition handoff touching mask — is in progress it
// parks until the plane (or the partition) reopens; ctx cancellation
// abandons the attempt and ErrClosed reports a cluster that will never
// reopen.
func (c *Cluster) enter(ctx context.Context, mask uint64) (e *submitEpoch, si int32, err error) {
	return c.enterAt(ctx, c.shardIdx(), mask)
}

// enterAt is enter with the shard chosen by the caller — sessions pin
// theirs at open instead of fingerprinting the goroutine per call.
func (c *Cluster) enterAt(ctx context.Context, si int32, mask uint64) (e *submitEpoch, _ int32, err error) {
	for {
		e = c.sub.Load()
		// Increment first, then check the flags: a drainer sets its flag
		// (epoch closed / gate published) before summing, so either it
		// sees this increment or this check sees the flag and backs out
		// (never both missed).
		c.addInflight(si, mask, 1)
		g := c.gate.Load()
		if g != nil && g.mask&mask == 0 {
			g = nil // a move is in progress, but not on our partitions
		}
		if !e.closed.Load() && g == nil {
			return e, si, nil
		}
		c.addInflight(si, mask, -1)
		c.pingDrainer()
		if e.closed.Load() {
			select {
			case <-e.reopen:
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			case <-c.closedCh:
				return nil, 0, ErrClosed
			}
			continue
		}
		select {
		case <-g.reopen:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-c.closedCh:
			return nil, 0, ErrClosed
		}
	}
}

// exitShard releases one in-flight count (shard plus warehouse bits).
// If a drain or handoff is in progress the drainer is pinged to
// re-check its sum; the ping is advisory (buffered, dropped when one is
// already pending).
func (c *Cluster) exitShard(si int32, mask uint64) {
	c.addInflight(si, mask, -1)
	c.pingDrainer()
}

// pingDrainer wakes whichever drainer (epoch or partition) is waiting
// on the counters. At most one drainer exists at a time — every drain
// runs under switchMu.
func (c *Cluster) pingDrainer() {
	if c.sub.Load().closed.Load() || c.gate.Load() != nil {
		select {
		case c.drainWake <- struct{}{}:
		default:
		}
	}
}

// inflightCount sums the shards. Only meaningful to a drainer that has
// already closed the current epoch (no new entries can commit, so a
// zero sum is stable).
func (c *Cluster) inflightCount() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].n.Load()
	}
	return n
}

// inflightOn sums the per-warehouse counters named by mask across all
// shards. Only meaningful to a drainer that has already published a
// gate covering mask (no new overlapping entries can commit; the sum
// may transiently overcount a backing-out racer, never undercount).
func (c *Cluster) inflightOn(mask uint64) int64 {
	var n int64
	for si := 0; si < len(c.shards); si++ {
		base := si * whSlots
		for m := mask; m != 0; m &= m - 1 {
			n += c.whCounts[base+bits.TrailingZeros64(m)].Load()
		}
	}
	return n
}

// drainLocked waits for the in-flight sum to reach zero. The caller
// holds switchMu and has closed the current epoch. On ctx cancellation
// the drain is abandoned (caller reopens with the old policy); on
// cluster close it returns ErrClosed and the caller must NOT reopen —
// Close owns the plane from there.
func (c *Cluster) drainLocked(ctx context.Context) error {
	for c.inflightCount() != 0 {
		select {
		case <-c.drainWake:
		case <-ctx.Done():
			return ctx.Err()
		case <-c.closedCh:
			return ErrClosed
		}
	}
	return nil
}

// drainPartitionLocked waits for the in-flight work overlapping mask to
// reach zero. The caller holds switchMu and has published a gate with
// this mask. Same abandonment contract as drainLocked.
func (c *Cluster) drainPartitionLocked(ctx context.Context, mask uint64) error {
	for c.inflightOn(mask) != 0 {
		select {
		case <-c.drainWake:
		case <-ctx.Done():
			return ctx.Err()
		case <-c.closedCh:
			return ErrClosed
		}
	}
	return nil
}

// reopenLocked publishes a fresh open epoch under p and releases the
// submitters gated on prev. switchMu must be held.
func (c *Cluster) reopenLocked(prev *submitEpoch, p Policy) {
	c.sub.Store(newEpoch(p))
	close(prev.reopen)
}

package anydb

import (
	"context"
	"sync/atomic"
	"unsafe"
)

// This file is the cluster's submission plane: the accounting every
// Submit*/Query entry and completion passes through, and the epoch gate
// a policy switch (or Close, or Verify) uses to quiesce the cluster.
//
// The paper's premise (§2) is that an architecture shift is
// instantaneous because state never moves; the client entry matches
// that by making the steady-state path contention-free. An uncontended
// submission performs no mutex lock/unlock at all:
//
//   - in-flight accounting is one atomic add on a goroutine-affine,
//     cache-line-padded shard (and one atomic sub at completion);
//   - the open/draining decision is one atomic pointer load plus one
//     flag load on the current epoch;
//   - transaction ids come from an atomic counter, and the completion
//     rendezvous needs no shared lookup table at all — the *Future
//     rides the event plane as an opaque client token and comes back
//     on the DoneInfo.
//
// A drain (SetPolicy, Verify, Close) closes the current epoch with one
// flag store: submitters that race in observe the flag after their
// increment (sequentially consistent, Dekker-style), back out, and park
// on the epoch's reopen channel — so the drainer's counter sum can
// never miss an admitted submission, and a submitter can never slip
// under a drain. Completions keep decrementing; each decrement that
// observes a closed epoch pings the drainer, which re-checks the sum.
// When the sum hits zero the drainer reconfigures and publishes a fresh
// open epoch, releasing the gate — the drain-or-reject guarantee
// (including ErrClosed once Close has begun) of the old mutex plane,
// kept verbatim, without the mutex.

// submitShard is one padded in-flight counter. Padding keeps each
// counter on its own cache line so parallel submitters on different
// shards never false-share.
type submitShard struct {
	n atomic.Int64
	_ [56]byte
}

// submitEpoch is one open interval of the submission plane. The shard
// counters are global (cluster-lifetime) — an epoch only carries the
// policy submissions route under, the draining flag, and the gate
// released when a successor epoch is published.
type submitEpoch struct {
	policy Policy
	// closed flips once a drain begins; it never unflips (reopening
	// publishes a successor epoch instead).
	closed atomic.Bool
	// reopen is closed when the successor epoch is published. A closed
	// epoch that is never succeeded (Close) leaves waiters to the
	// cluster-wide closedCh.
	reopen chan struct{}
}

func newEpoch(p Policy) *submitEpoch {
	return &submitEpoch{policy: p, reopen: make(chan struct{})}
}

// shardIdx picks the calling goroutine's submission shard. The address
// of a stack variable is a cheap goroutine fingerprint (stacks are
// distinct allocations, ≥2KiB apart), giving each session goroutine a
// stable shard without runtime hooks; correctness never depends on the
// mapping — enter records the index it incremented and the completion
// decrements exactly that shard.
func (c *Cluster) shardIdx() int32 {
	var marker byte
	return int32(uintptr(unsafe.Pointer(&marker))>>10) & c.shardMask
}

// enter joins the current epoch, returning it with one in-flight count
// held on shard si. The uncontended path is lock-free: one atomic add,
// two atomic loads. While a drain is in progress it parks until the
// plane reopens; ctx cancellation abandons the attempt and ErrClosed
// reports a cluster that will never reopen.
func (c *Cluster) enter(ctx context.Context) (e *submitEpoch, si int32, err error) {
	si = c.shardIdx()
	for {
		e = c.sub.Load()
		// Increment first, then check the flag: a drainer sets the flag
		// before summing, so either it sees this increment or this
		// check sees the flag and backs out (never both missed).
		c.shards[si].n.Add(1)
		if !e.closed.Load() {
			return e, si, nil
		}
		c.exitShard(si)
		select {
		case <-e.reopen:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-c.closedCh:
			return nil, 0, ErrClosed
		}
	}
}

// exitShard releases one in-flight count. If a drain is in progress the
// drainer is pinged to re-check the sum; the ping is advisory (buffered,
// dropped when one is already pending).
func (c *Cluster) exitShard(si int32) {
	c.shards[si].n.Add(-1)
	if c.sub.Load().closed.Load() {
		select {
		case c.drainWake <- struct{}{}:
		default:
		}
	}
}

// inflightCount sums the shards. Only meaningful to a drainer that has
// already closed the current epoch (no new entries can commit, so a
// zero sum is stable).
func (c *Cluster) inflightCount() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].n.Load()
	}
	return n
}

// drainLocked waits for the in-flight sum to reach zero. The caller
// holds switchMu and has closed the current epoch. On ctx cancellation
// the drain is abandoned (caller reopens with the old policy); on
// cluster close it returns ErrClosed and the caller must NOT reopen —
// Close owns the plane from there.
func (c *Cluster) drainLocked(ctx context.Context) error {
	for c.inflightCount() != 0 {
		select {
		case <-c.drainWake:
		case <-ctx.Done():
			return ctx.Err()
		case <-c.closedCh:
			return ErrClosed
		}
	}
	return nil
}

// reopenLocked publishes a fresh open epoch under p and releases the
// submitters gated on prev. switchMu must be held.
func (c *Cluster) reopenLocked(prev *submitEpoch, p Policy) {
	c.sub.Store(newEpoch(p))
	close(prev.reopen)
}

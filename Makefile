# Same targets CI runs (.github/workflows/ci.yml) — keep them in sync
# so humans and the pipeline always execute identical commands.

GO ?= go

.PHONY: all build test race bench bench-submit bench-json allocs-gate cluster-smoke crash-smoke profile fmt vet figures clean ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every figure regeneration, no unit
# tests. The figures are deterministic virtual-time runs, so a single
# iteration is meaningful.
bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...

# Contention smoke: the submission-plane and topology-read benchmarks at
# -cpu 1,4, so a regression that re-serializes the entry (a lock on the
# hot path scales visibly worse at 4) shows up in CI. Short benchtime —
# this watches the slope and allocs/op, not absolute throughput.
# BenchmarkRebalance rides along: live-handoff latency plus the txn/s
# the moves leave intact (the throughput dip). BenchmarkPaymentDurable
# documents the group-commit WAL cost next to the Durability=Off
# baseline (same pipelined shape, Batch mode, one fsync per drain).
# BenchmarkGroupedAgg compares the dense grouped-aggregate fast path
# against the hash-map fallback on the same dictionary-encoded query.
bench-submit:
	$(GO) test -run '^$$' -bench 'BenchmarkSubmitContention|BenchmarkPaymentPipelined|BenchmarkPaymentDurable|BenchmarkSessionAffinity|BenchmarkRebalance|BenchmarkSharedScanConcurrency|BenchmarkGroupedAgg' \
		-benchmem -benchtime 0.3s -cpu 1,4 .
	$(GO) test -run '^$$' -bench 'BenchmarkTopologyRead' -benchmem -benchtime 0.3s -cpu 1,4 ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkScanFlush' -benchmem -benchtime 0.3s ./internal/olap

# Machine-readable benchmark summary: per-policy + adaptive throughput
# on the evolving workload. CI uploads BENCH_PR10.json as an artifact,
# and benchdata/ keeps the committed per-PR trajectory points for
# comparison. Deterministic virtual-time runs — the short phase keeps
# it a smoke, shapes are scale-invariant.
bench-json:
	$(GO) run ./cmd/anydb-bench -phase-ms 6 -json BENCH_PR10.json

# Deterministic allocation gate: the pipelined payment path (with
# Durability=Off — the default; BenchmarkPaymentPipelined never sets
# Config.Durability, so a WAL hook leaking onto the undurable hot path
# shows up here) and the analytical scan-flush path must report exactly
# 0 allocs/op. Fixed iteration counts keep the gate reproducible on any
# machine; the payment path runs 100000x so cold-pool warm-up amortizes
# below the integer allocs/op floor (a reintroduced per-op allocation
# still shows as >= 1).
allocs-gate:
	@set -e; \
	out1="$$($(GO) test -run '^$$' -bench 'BenchmarkPaymentPipelined' -benchmem -benchtime 100000x -cpu 4 .)"; \
	out2="$$($(GO) test -run '^$$' -bench 'BenchmarkScanFlush' -benchmem -benchtime 100x ./internal/olap)"; \
	printf '%s\n%s\n' "$$out1" "$$out2"; \
	printf '%s\n%s\n' "$$out1" "$$out2" | awk '/^Benchmark/ { a=$$(NF-1)+0; if (a != 0) { print "ALLOCS GATE FAIL: " $$1 " = " a " allocs/op"; bad=1 } } END { exit bad }'; \
	echo "allocs gate OK: 0 allocs/op on the payment and scan-flush hot paths"

# Two-process cluster smoke: builds the member binary, then runs the
# head + member demo end to end (payments, new-orders, SQL, and a live
# cross-process migration, finishing with Verify + exactly-once).
cluster-smoke:
	$(GO) build ./cmd/anydbd
	$(GO) run ./examples/cluster

# Fault smoke, blocking in CI: the kill-and-restart recovery test
# (SIGKILL mid-burst under Batch durability, reopen, Verify-clean with
# exactly-once acked effects) plus the member-death cluster tests
# (futures resolve typed, partitions pulled home, traffic resumes).
# Run under -race: the failure paths are the racy ones.
crash-smoke:
	$(GO) test -race -count=1 -run 'TestCrashRecovery|TestMemberDeath|TestMemberReconnect|TestSessionAcrossMemberDeath' -v .

# CPU + allocation profiles of the parallel submission hot path (the
# public API entry under GOMAXPROCS submitters). Inspect with `go tool
# pprof cpu.prof` / `go tool pprof -sample_index=alloc_objects mem.prof`;
# add -mutexprofile to verify the uncontended entry takes no mutex.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkSubmitContention/NoChurn' -benchtime 3s \
		-cpuprofile cpu.prof -memprofile mem.prof -mutexprofile mutex.prof -o anydb-profile.test .
	@echo "wrote cpu.prof, mem.prof, mutex.prof (binary: anydb-profile.test)"

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Regenerate every paper figure at full scale.
figures:
	$(GO) run ./cmd/anydb-bench -fig all

# Remove generated build/bench artifacts (everything .gitignore lists).
clean:
	rm -f cpu.prof mem.prof mutex.prof anydb-profile.test anydbd \
		BENCH_PR*.json submit_bench_new.txt

ci: fmt vet build race bench

# Same targets CI runs (.github/workflows/ci.yml) — keep them in sync
# so humans and the pipeline always execute identical commands.

GO ?= go

.PHONY: all build test race bench bench-json profile fmt vet figures ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every figure regeneration, no unit
# tests. The figures are deterministic virtual-time runs, so a single
# iteration is meaningful.
bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...

# Machine-readable benchmark summary: per-policy + adaptive throughput
# on the evolving workload. CI uploads BENCH_PR3.json as an artifact,
# and benchdata/ keeps the committed per-PR trajectory points for
# comparison. Deterministic virtual-time runs — the short phase keeps
# it a smoke, shapes are scale-invariant.
bench-json:
	$(GO) run ./cmd/anydb-bench -phase-ms 6 -json BENCH_PR3.json

# CPU + allocation profiles of the pipelined payment benchmark (the
# public API's submission hot path). Inspect with `go tool pprof
# cpu.prof` / `go tool pprof -sample_index=alloc_objects mem.prof`.
profile:
	$(GO) test -run '^$$' -bench BenchmarkPaymentPipelined -benchtime 3s \
		-cpuprofile cpu.prof -memprofile mem.prof -o anydb-profile.test .
	@echo "wrote cpu.prof, mem.prof (binary: anydb-profile.test)"

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Regenerate every paper figure at full scale.
figures:
	$(GO) run ./cmd/anydb-bench -fig all

ci: fmt vet build race bench

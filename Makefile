# Same targets CI runs (.github/workflows/ci.yml) — keep them in sync
# so humans and the pipeline always execute identical commands.

GO ?= go

.PHONY: all build test race bench bench-json fmt vet figures ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every figure regeneration, no unit
# tests. The figures are deterministic virtual-time runs, so a single
# iteration is meaningful.
bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...

# Machine-readable benchmark summary: per-policy + adaptive throughput
# on the evolving workload. CI uploads BENCH_PR2.json as an artifact so
# the perf trajectory accumulates across PRs. Deterministic virtual-time
# runs — the short phase keeps it a smoke, shapes are scale-invariant.
bench-json:
	$(GO) run ./cmd/anydb-bench -phase-ms 6 -json BENCH_PR2.json

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Regenerate every paper figure at full scale.
figures:
	$(GO) run ./cmd/anydb-bench -fig all

ci: fmt vet build race bench

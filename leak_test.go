package anydb_test

import (
	"testing"

	"anydb/internal/core"
)

// trackPools arms the process-global pool-leak accounting for one test
// and returns the assertion to run once the cluster's Close returned: a
// drained shutdown must leave zero outstanding pooled Events, DataMsgs,
// and Batches — a nonzero balance means some path got a pooled message
// and never reached its single-consumer death point (or freed it
// twice). Tests sharing the counters run sequentially, so arming per
// test is safe.
func trackPools(t *testing.T) (assertBalanced func()) {
	t.Helper()
	core.TrackPools(true)
	t.Cleanup(func() { core.TrackPools(false) })
	return func() {
		t.Helper()
		if e, d, b := core.PoolBalances(); e != 0 || d != 0 || b != 0 {
			t.Errorf("pooled objects leaked across Close: %s", core.PoolBalanceString())
		}
	}
}

// Command anydbd runs one member process of a multi-process anydb
// cluster: it joins the head (a process that called anydb.Open with
// Config.Listen/RemoteServers), hosts one server's ACs, and serves the
// cluster's event and data streams over TCP until the head dismisses
// it. A dropped connection is survived: the member redials the head
// with backoff and resumes if the splice lands inside the head's
// grace window; only a dismissal (or an exhausted rejoin window) ends
// the process.
//
// Usage:
//
//	anydbd -join 127.0.0.1:7070
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"anydb"
)

func main() {
	join := flag.String("join", "", "head address to join (host:port)")
	flag.Parse()
	if *join == "" {
		log.Fatal("anydbd: -join host:port is required")
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	log.Printf("anydbd: joining head at %s", *join)
	if err := anydb.ServeNode(ctx, *join); err != nil {
		log.Fatalf("anydbd: %v", err)
	}
	log.Print("anydbd: dismissed by head, shutting down")
}

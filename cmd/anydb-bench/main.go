// Command anydb-bench regenerates the paper's evaluation figures on the
// deterministic virtual-time runtime. Output is a text table per figure
// (use -csv for plot-ready data).
//
// Usage:
//
//	anydb-bench -fig 1          # Figure 1: evolving workload
//	anydb-bench -fig 5          # Figure 5: OLTP execution strategies
//	anydb-bench -fig 6          # Figure 6: data beaming
//	anydb-bench -fig all        # everything incl. the routing ablation
//	anydb-bench -fig 5 -phase-ms 50 -csv
//	anydb-bench -json out.json  # machine-readable per-policy + adaptive summary
package main

import (
	"flag"
	"fmt"
	"os"

	"anydb/internal/bench"
	"anydb/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 5, 6, ablation, all")
	phaseMS := flag.Int("phase-ms", 20, "virtual milliseconds per workload phase (figures 1 and 5)")
	outstanding := flag.Int("outstanding", 32, "closed-loop depth (in-flight transactions)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	jsonOut := flag.String("json", "", "write the machine-readable evolving-workload summary (per-policy + adaptive throughput) to this file and exit")
	flag.Parse()

	opts := bench.DefaultOLTPOpts()
	opts.PhaseDur = sim.Time(*phaseMS) * sim.Millisecond
	opts.Outstanding = *outstanding

	if *jsonOut != "" {
		data, err := bench.JSONReport(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		return
	}

	switch *fig {
	case "1":
		figure1(opts, *csv)
	case "5":
		figure5(opts, *csv)
	case "6":
		figure6(*csv)
	case "ablation":
		fmt.Print(bench.RenderAblation(bench.Ablation(opts)))
	case "all":
		figure1(opts, *csv)
		fmt.Println()
		figure5(opts, *csv)
		fmt.Println()
		figure6(*csv)
		fmt.Println()
		fmt.Print(bench.RenderAblation(bench.Ablation(opts)))
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q (want 1, 5, 6, ablation, all)\n", *fig)
		os.Exit(2)
	}
}

func figure1(opts bench.OLTPOpts, csv bool) {
	res := bench.Figure1(opts)
	if csv {
		fmt.Print(bench.RenderCSV("phase", bench.PhaseHeaders(12), res.Series))
		return
	}
	fmt.Print(bench.RenderFigure1(res, opts))
}

func figure5(opts bench.OLTPOpts, csv bool) {
	series := bench.Figure5(opts)
	if csv {
		fmt.Print(bench.RenderCSV("phase", bench.PhaseHeaders(6), series))
		return
	}
	fmt.Print(bench.RenderFigure5(series, opts))
	fmt.Println()
	fmt.Print(bench.Headline(series))
}

func figure6(csv bool) {
	opts := bench.DefaultFig6Opts()
	res := bench.Figure6(opts)
	if csv {
		for _, metric := range []string{"total", "build", "probe"} {
			fmt.Printf("# %s (ms)\n", metric)
			fmt.Print(bench.RenderCSV("compile_ms", bench.CompileHeaders(res.Compile),
				bench.Fig6Series(res, metric)))
		}
		return
	}
	fmt.Print(bench.RenderFigure6(res))
}

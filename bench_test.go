// Benchmarks regenerating the paper's evaluation, one per figure (plus
// the routing ablation). Each benchmark prints the reproduced table once
// and reports wall time per full regeneration; the numbers inside the
// tables are deterministic virtual-time measurements, so -benchtime=1x is
// enough.
//
//	go test -bench=. -benchmem
//	go test -bench Figure5 -run - -v
package anydb_test

import (
	"fmt"
	"sync"
	"testing"

	"anydb/internal/bench"
	"anydb/internal/sim"
)

var printOnce sync.Once

// benchOLTP uses a shorter phase than the CLI so `go test -bench .` stays
// fast; shapes are unchanged (the simulation is deterministic).
func benchOLTP() bench.OLTPOpts {
	o := bench.DefaultOLTPOpts()
	o.PhaseDur = 10 * sim.Millisecond
	return o
}

// BenchmarkFigure1 regenerates Figure 1: OLTP throughput across the
// 12-phase evolving workload, DBx1000 vs AnyDB.
func BenchmarkFigure1(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		res := bench.Figure1(benchOLTP())
		out = bench.RenderFigure1(res, benchOLTP())
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure5 regenerates Figure 5: the six OLTP execution-strategy
// series over partitionable and skewed phases.
func BenchmarkFigure5(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		series := bench.Figure5(benchOLTP())
		out = bench.RenderFigure5(series, benchOLTP()) + "\n" + bench.Headline(series)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure6 regenerates Figure 6: data beaming runtimes vs query
// compile time (scaled-down database; cmd/anydb-bench runs full scale).
func BenchmarkFigure6(b *testing.B) {
	opts := bench.DefaultFig6Opts()
	opts.Cfg.Warehouses = 12
	opts.Cfg.InitOrders = 1500
	var out string
	for i := 0; i < b.N; i++ {
		res := bench.Figure6(opts)
		out = bench.RenderFigure6(res)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblationRouting quantifies the event cost of each routing mode
// (Figure 4's duality measured).
func BenchmarkAblationRouting(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.RenderAblation(bench.Ablation(benchOLTP()))
	}
	b.StopTimer()
	fmt.Println(out)
}

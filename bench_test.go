// Benchmarks regenerating the paper's evaluation, one per figure (plus
// the routing ablation). Each benchmark prints the reproduced table once
// and reports wall time per full regeneration; the numbers inside the
// tables are deterministic virtual-time measurements, so -benchtime=1x is
// enough.
//
//	go test -bench=. -benchmem
//	go test -bench Figure5 -run - -v
package anydb_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anydb"
	"anydb/internal/bench"
	"anydb/internal/olap"
	"anydb/internal/sim"
)

var printOnce sync.Once

// benchOLTP uses a shorter phase than the CLI so `go test -bench .` stays
// fast; shapes are unchanged (the simulation is deterministic).
func benchOLTP() bench.OLTPOpts {
	o := bench.DefaultOLTPOpts()
	o.PhaseDur = 10 * sim.Millisecond
	return o
}

// BenchmarkFigure1 regenerates Figure 1: OLTP throughput across the
// 12-phase evolving workload, DBx1000 vs AnyDB.
func BenchmarkFigure1(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		res := bench.Figure1(benchOLTP())
		out = bench.RenderFigure1(res, benchOLTP())
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure5 regenerates Figure 5: the six OLTP execution-strategy
// series over partitionable and skewed phases.
func BenchmarkFigure5(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		series := bench.Figure5(benchOLTP())
		out = bench.RenderFigure5(series, benchOLTP()) + "\n" + bench.Headline(series)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure6 regenerates Figure 6: data beaming runtimes vs query
// compile time (scaled-down database; cmd/anydb-bench runs full scale).
func BenchmarkFigure6(b *testing.B) {
	opts := bench.DefaultFig6Opts()
	opts.Cfg.Warehouses = 12
	opts.Cfg.InitOrders = 1500
	var out string
	for i := 0; i < b.N; i++ {
		res := bench.Figure6(opts)
		out = bench.RenderFigure6(res)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblationRouting quantifies the event cost of each routing mode
// (Figure 4's duality measured).
func BenchmarkAblationRouting(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.RenderAblation(bench.Ablation(benchOLTP()))
	}
	b.StopTimer()
	fmt.Println(out)
}

// openBenchCluster sizes a real-runtime cluster for the submission
// benchmarks below (these measure the public API's hot path, not a
// paper figure).
func openBenchCluster(b *testing.B) *anydb.Cluster {
	b.Helper()
	c, err := anydb.Open(anydb.Config{
		Warehouses: 4, Districts: 4, CustomersPerDistrict: 100,
		InitialOrdersPerDist: 10, Items: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

const submitWorkers = 4

// BenchmarkPaymentBlocking drives payments from submitWorkers goroutines
// one round trip at a time — the query-at-a-time client model.
func BenchmarkPaymentBlocking(b *testing.B) {
	c := openBenchCluster(b)
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < submitWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < b.N; i += submitWorkers {
				if _, err := c.Payment(anydb.Payment{
					Warehouse: i % 4, District: 1 + i%4, Customer: 1 + i%100, Amount: 1,
				}); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkSubmitContention measures the cluster-entry path under
// maximum submitter parallelism: GOMAXPROCS sessions pipeline payments
// (a 64-deep window each), so every submission hits the gate/inflight
// accounting at the same time. The NoChurn variant is the steady state;
// PolicyChurn keeps a concurrent SetPolicy loop flipping the routing, so
// the drain/reopen slow path stays exercised while submitters race it.
// Run with -cpu 1,4 to see the contention slope, and with
// -mutexprofile to verify the uncontended path takes no mutex.
func BenchmarkSubmitContention(b *testing.B) {
	for _, churn := range []bool{false, true} {
		name := "NoChurn"
		if churn {
			name = "PolicyChurn"
		}
		b.Run(name, func(b *testing.B) {
			c := openBenchCluster(b)
			ctx := context.Background()
			stop := make(chan struct{})
			var churner sync.WaitGroup
			if churn {
				churner.Add(1)
				go func() {
					defer churner.Done()
					pols := []anydb.Policy{anydb.StreamingCC, anydb.SharedNothing}
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						sctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
						c.SetPolicy(sctx, pols[i%len(pols)])
						cancel()
						time.Sleep(time.Millisecond)
					}
				}()
			}
			b.ResetTimer()
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				const window = 64
				futs := make([]*anydb.Future, 0, window)
				flush := func() {
					for _, f := range futs {
						if _, err := f.Wait(ctx); err != nil {
							b.Error(err)
						}
					}
					futs = futs[:0]
				}
				i := 0
				for pb.Next() {
					f, err := c.SubmitPayment(ctx, anydb.Payment{
						Warehouse: i % 4, District: 1 + i%4, Customer: 1 + i%100, Amount: 1,
					})
					if err != nil {
						b.Error(err)
						return
					}
					if futs = append(futs, f); len(futs) == window {
						flush()
					}
					i++
				}
				flush()
			})
			b.StopTimer()
			close(stop)
			churner.Wait()
		})
	}
}

// BenchmarkRebalance measures the live partition-handoff path: each op
// is one Cluster.Rebalance bouncing a warehouse between two servers
// while pipelined payment sessions keep every warehouse loaded — so the
// reported ns/op is the real gate-drain-handoff-reopen latency under
// traffic, and the txn/s metric shows what throughput the moves leave
// intact (the dip). Run with -cpu 1,4 alongside the other submit-plane
// benchmarks.
func BenchmarkRebalance(b *testing.B) {
	c, err := anydb.Open(anydb.Config{
		Servers: 3, Warehouses: 8, Districts: 4, CustomersPerDistrict: 100,
		InitialOrdersPerDist: 10, Items: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	ctx := context.Background()
	stop := make(chan struct{})
	var committed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < submitWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			const window = 32
			futs := make([]*anydb.Future, 0, window)
			flush := func() {
				for _, f := range futs {
					if ok, err := f.Wait(ctx); err == nil && ok {
						committed.Add(1)
					}
				}
				futs = futs[:0]
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					flush()
					return
				default:
				}
				f, err := c.SubmitPayment(ctx, anydb.Payment{
					Warehouse: (g + i) % 8, District: 1 + i%4, Customer: 1 + i%100, Amount: 1,
				})
				if err != nil {
					return
				}
				if futs = append(futs, f); len(futs) == window {
					flush()
				}
			}
		}(g)
	}
	b.ResetTimer()
	b.ReportAllocs()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := c.Rebalance(ctx, 7, []int{0, 2}[i%2]); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	wg.Wait()
	if elapsed > 0 {
		b.ReportMetric(float64(committed.Load())/elapsed.Seconds(), "txn/s")
	}
}

// BenchmarkSharedScanConcurrency measures aggregate analytical query
// throughput as concurrency grows. All queries scan the same table, so
// concurrent registrations ride shared cursor passes (one chunk fetch
// and one driver continuation per chunk, however many queries attach)
// while parse/plan/sink work pipelines across ACs. Conc1 is the
// sequential baseline; the queries/s metric is the headline. Run with
// -cpu 1,4 alongside the submit-plane benchmarks.
// scanBenchConfig sizes the analytical benchmarks below: 10k customers
// per partition (several columnar chunks), so scan work dominates the
// per-query fixed costs and cursor sharing is what's being measured.
func scanBenchConfig() anydb.Config {
	return anydb.Config{
		Warehouses: 4, Districts: 4, CustomersPerDistrict: 2500,
		InitialOrdersPerDist: 10, Items: 100,
	}
}

func BenchmarkSharedScanConcurrency(b *testing.B) {
	const query = "SELECT COUNT(*) FROM customer WHERE c_d_id <> 0"
	for _, conc := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("Conc%d", conc), func(b *testing.B) {
			c, err := anydb.Open(scanBenchConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Close)
			ctx := context.Background()
			var want int64
			if err := c.QueryRow(ctx, query).Scan(&want); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			var next atomic.Int64
			var wg sync.WaitGroup
			start := time.Now()
			for g := 0; g < conc; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						var n int64
						if err := c.QueryRow(ctx, query).Scan(&n); err != nil {
							b.Error(err)
							return
						}
						if n != want {
							b.Errorf("count = %d, want %d", n, want)
							return
						}
					}
				}()
			}
			wg.Wait()
			if elapsed := time.Since(start); elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
			}
		})
	}
}

// BenchmarkGroupedAgg measures grouped-aggregate throughput on a
// dictionary-encoded group column: Fast uses the dense fast path
// (packed group codes index a flat accumulator, one bounds-checked
// array access per row), Map forces the hash-map fallback the fast
// path replaces. Same query, same data, Conc 1/8/32 — the Fast/Map
// ratio at equal concurrency is the vectorized path's win, and the
// queries/s metric is the headline.
func BenchmarkGroupedAgg(b *testing.B) {
	const query = "SELECT c_state, COUNT(*) FROM customer GROUP BY c_state"
	countGroups := func(c *anydb.Cluster, ctx context.Context) (groups int64, total int64, err error) {
		rows, err := c.Query(ctx, query)
		if err != nil {
			return 0, 0, err
		}
		defer rows.Close()
		for rows.Next() {
			var state string
			var n int64
			if err := rows.Scan(&state, &n); err != nil {
				return 0, 0, err
			}
			groups++
			total += n
		}
		return groups, total, nil
	}
	for _, fast := range []bool{true, false} {
		mode := "Fast"
		if !fast {
			mode = "Map"
		}
		b.Run(mode, func(b *testing.B) {
			prev := olap.SetGroupedAggFastPath(fast)
			defer olap.SetGroupedAggFastPath(prev)
			for _, conc := range []int{1, 8, 32} {
				b.Run(fmt.Sprintf("Conc%d", conc), func(b *testing.B) {
					c, err := anydb.Open(scanBenchConfig())
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(c.Close)
					ctx := context.Background()
					// Warm-up pass builds the columnar chunks and
					// dictionaries; the timed region measures steady state.
					wantGroups, wantTotal, err := countGroups(c, ctx)
					if err != nil {
						b.Fatal(err)
					}
					if wantGroups == 0 || wantTotal == 0 {
						b.Fatalf("warm-up returned %d groups / %d rows", wantGroups, wantTotal)
					}
					b.ResetTimer()
					b.ReportAllocs()
					var next atomic.Int64
					var wg sync.WaitGroup
					start := time.Now()
					for g := 0; g < conc; g++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for next.Add(1) <= int64(b.N) {
								groups, total, err := countGroups(c, ctx)
								if err != nil {
									b.Error(err)
									return
								}
								if groups != wantGroups || total != wantTotal {
									b.Errorf("got %d groups / %d rows, want %d / %d",
										groups, total, wantGroups, wantTotal)
									return
								}
							}
						}()
					}
					wg.Wait()
					if elapsed := time.Since(start); elapsed > 0 {
						b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
					}
				})
			}
		})
	}
}

// TestSharedScanConcurrencySpeedup pins the point of the shared-scan
// engine: 32 concurrent same-table analytical queries must deliver at
// least 5× the aggregate throughput of 32 sequential ones. Retried a
// few times so a noisy scheduler cannot fail a healthy engine.
//
// The filter is a LIKE prefix: on the encoded chunks it is a per-row
// dictionary-bitset probe, which concurrent identical queries share
// (one evaluation per chunk) and sequential ones each pay — the
// sharing this test measures. A trivially-satisfiable filter like
// `c_d_id <> 0` no longer works here: it collapses to a chunk-level
// match-all, scans become nearly free, and per-query fixed costs
// dominate both sides.
func TestSharedScanConcurrencySpeedup(t *testing.T) {
	c, err := anydb.Open(scanBenchConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	const query = "SELECT COUNT(*) FROM customer WHERE c_state LIKE 'A%'"
	const n = 32
	var want int64
	if err := c.QueryRow(ctx, query).Scan(&want); err != nil {
		t.Fatal(err)
	}
	runOne := func() {
		var got int64
		if err := c.QueryRow(ctx, query).Scan(&got); err != nil {
			t.Error(err)
		} else if got != want {
			t.Errorf("count = %d, want %d", got, want)
		}
	}
	var best float64
	for attempt := 0; attempt < 3; attempt++ {
		seqStart := time.Now()
		for i := 0; i < n; i++ {
			runOne()
		}
		seq := time.Since(seqStart)

		var wg sync.WaitGroup
		concStart := time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runOne()
			}()
		}
		wg.Wait()
		conc := time.Since(concStart)
		if t.Failed() {
			t.FailNow()
		}
		speedup := float64(seq) / float64(conc)
		t.Logf("attempt %d: %d sequential in %v, %d concurrent in %v (%.1fx)",
			attempt, n, seq, n, conc, speedup)
		if speedup > best {
			best = speedup
		}
		if best >= 5 {
			return
		}
	}
	t.Fatalf("32 concurrent queries only %.1fx faster than sequential, want >= 5x", best)
}

// BenchmarkPaymentPipelined drives the same payments from the same
// number of goroutines, but each worker opens a Session and keeps a
// window of submissions in flight (SubmitPayment + deferred Wait)
// instead of blocking per transaction — the async-session idiom this
// API exists for.
func BenchmarkPaymentPipelined(b *testing.B) {
	c := openBenchCluster(b)
	const window = 64
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	var wg sync.WaitGroup
	for g := 0; g < submitWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := c.Session()
			defer s.Close()
			futs := make([]*anydb.Future, 0, window)
			flush := func() {
				for _, f := range futs {
					if _, err := f.Wait(ctx); err != nil {
						b.Error(err)
					}
				}
				futs = futs[:0]
			}
			for i := g; i < b.N; i += submitWorkers {
				f, err := s.SubmitPayment(ctx, anydb.Payment{
					Warehouse: i % 4, District: 1 + i%4, Customer: 1 + i%100, Amount: 1,
				})
				if err != nil {
					b.Error(err)
					return
				}
				if futs = append(futs, f); len(futs) == window {
					flush()
				}
			}
			flush()
		}(g)
	}
	wg.Wait()
}

// BenchmarkPaymentDurable is the pipelined payment path with the
// group-commit WAL on (Durability Batch): per-dispatcher logs, one
// fsync per drain cycle. Compare against BenchmarkPaymentPipelined for
// the durability tax; allocs/op stays bounded (the log's record and
// batch buffers amortize), it is not required to hit zero.
func BenchmarkPaymentDurable(b *testing.B) {
	c, err := anydb.Open(anydb.Config{
		Warehouses: 4, Districts: 4, CustomersPerDistrict: 100,
		InitialOrdersPerDist: 10, Items: 100,
		Durability: anydb.DurabilityBatch, WALDir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	const window = 64
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	var wg sync.WaitGroup
	for g := 0; g < submitWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := c.Session()
			defer s.Close()
			futs := make([]*anydb.Future, 0, window)
			flush := func() {
				for _, f := range futs {
					if _, err := f.Wait(ctx); err != nil {
						b.Error(err)
					}
				}
				futs = futs[:0]
			}
			for i := g; i < b.N; i += submitWorkers {
				f, err := s.SubmitPayment(ctx, anydb.Payment{
					Warehouse: i % 4, District: 1 + i%4, Customer: 1 + i%100, Amount: 1,
				})
				if err != nil {
					b.Error(err)
					return
				}
				if futs = append(futs, f); len(futs) == window {
					flush()
				}
			}
			flush()
		}(g)
	}
	wg.Wait()
}

// BenchmarkSessionAffinity isolates what Session pinning buys on the
// submission path: the same pipelined payment load driven through
// per-goroutine Sessions (pinned shard, cached epoch, private future
// freelist) versus the session-less entry points (per-call goroutine
// fingerprint, shared future pool). Run with -cpu 1,4; the spread
// between the two sub-benchmarks is the sessions' win.
func BenchmarkSessionAffinity(b *testing.B) {
	const window = 64
	ctx := context.Background()
	for _, sessioned := range []bool{true, false} {
		name := "Session"
		if !sessioned {
			name = "Sessionless"
		}
		b.Run(name, func(b *testing.B) {
			c := openBenchCluster(b)
			b.ResetTimer()
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				submit := c.SubmitPayment
				if sessioned {
					s := c.Session()
					defer s.Close()
					submit = s.SubmitPayment
				}
				futs := make([]*anydb.Future, 0, window)
				flush := func() {
					for _, f := range futs {
						if _, err := f.Wait(ctx); err != nil {
							b.Error(err)
						}
					}
					futs = futs[:0]
				}
				i := 0
				for pb.Next() {
					f, err := submit(ctx, anydb.Payment{
						Warehouse: i % 4, District: 1 + i%4, Customer: 1 + i%100, Amount: 1,
					})
					if err != nil {
						b.Error(err)
						return
					}
					if futs = append(futs, f); len(futs) == window {
						flush()
					}
					i++
				}
				flush()
			})
		})
	}
}

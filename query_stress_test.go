package anydb_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"anydb"
)

// TestQueryStressUnderChurn races the redesigned streaming query path —
// shared-scan analytical queries attaching to and wrapping in-flight
// cursor passes — against routing-policy churn (epoch drains) and live
// elastic Rebalance moves, under the race detector. Every query must
// return the exact static answer: partition handoff gates analytical
// work at the moving owner, so no scan may observe a half-moved
// partition, lose rows, or double-count them.
func TestQueryStressUnderChurn(t *testing.T) {
	assertBalanced := trackPools(t)
	cfg := anydb.Config{
		Warehouses: 4, Districts: 2, CustomersPerDistrict: 50,
		InitialOrdersPerDist: 10, Items: 40,
	}
	c, err := anydb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wantOrders := int64(cfg.Warehouses * cfg.Districts * cfg.InitialOrdersPerDist)
	wantCustomers := int64(cfg.Warehouses * cfg.Districts * cfg.CustomersPerDistrict)

	deadline := time.Now().Add(600 * time.Millisecond)
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Aggregate workers: a global count and a grouped aggregate, both
	// riding shared-scan pushdown.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				var n int64
				if err := c.QueryRow(bg, "SELECT COUNT(*) FROM orders").Scan(&n); err != nil {
					errs <- fmt.Errorf("agg worker %d: %v", g, err)
					return
				}
				if n != wantOrders {
					errs <- fmt.Errorf("agg worker %d: COUNT(*) = %d, want %d", g, n, wantOrders)
					return
				}
				rows, err := c.Query(bg, `SELECT o_d_id, COUNT(*) FROM orders
					GROUP BY o_d_id ORDER BY o_d_id`)
				if err != nil {
					errs <- fmt.Errorf("agg worker %d: %v", g, err)
					return
				}
				var total int64
				for rows.Next() {
					var d, cnt int64
					if err := rows.Scan(&d, &cnt); err != nil {
						errs <- fmt.Errorf("agg worker %d: scan: %v", g, err)
						return
					}
					total += cnt
				}
				rows.Close()
				if total != wantOrders {
					errs <- fmt.Errorf("agg worker %d: group total = %d, want %d", g, total, wantOrders)
					return
				}
			}
		}(g)
	}

	// Grouped-oracle worker: a dictionary-grouped aggregate (the dense
	// fast path) must keep returning the exact pre-churn group counts
	// while partitions move — a scan observing a half-moved partition
	// would shift counts between groups or lose rows.
	const groupedQ = "SELECT c_state, COUNT(*) FROM customer GROUP BY c_state"
	readGroups := func() (map[string]int64, error) {
		rows, err := c.Query(bg, groupedQ)
		if err != nil {
			return nil, err
		}
		defer rows.Close()
		got := make(map[string]int64)
		for rows.Next() {
			var state string
			var n int64
			if err := rows.Scan(&state, &n); err != nil {
				return nil, err
			}
			got[state] += n
		}
		return got, nil
	}
	wantGroups, err := readGroups()
	if err != nil {
		t.Fatal(err)
	}
	if len(wantGroups) < 2 {
		t.Fatalf("only %d states in seed data", len(wantGroups))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			got, err := readGroups()
			if err != nil {
				errs <- fmt.Errorf("grouped oracle: %v", err)
				return
			}
			if len(got) != len(wantGroups) {
				errs <- fmt.Errorf("grouped oracle: %d groups, want %d", len(got), len(wantGroups))
				return
			}
			for state, n := range wantGroups {
				if got[state] != n {
					errs <- fmt.Errorf("grouped oracle: %q = %d, want %d", state, got[state], n)
					return
				}
			}
		}
	}()

	// Streaming worker: projections iterated partially, then abandoned
	// via Close — exercising pooled-batch reclamation mid-iteration.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			rows, err := c.Query(bg, "SELECT c_id, c_d_id FROM customer")
			if err != nil {
				errs <- fmt.Errorf("stream worker: %v", err)
				return
			}
			var seen int64
			for rows.Next() {
				seen++
				if i%2 == 1 && seen == 7 {
					break // abandon mid-batch; Close must free the rest
				}
			}
			rows.Close()
			if i%2 == 0 && seen != wantCustomers {
				errs <- fmt.Errorf("stream worker: saw %d customers, want %d", seen, wantCustomers)
				return
			}
		}
	}()

	// Join worker: the paper's Q3 through the folded OpenOrders wrapper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var want int64 = -1
		for time.Now().Before(deadline) {
			n, err := c.OpenOrders(bg)
			if err != nil {
				errs <- fmt.Errorf("join worker: %v", err)
				return
			}
			if want == -1 {
				want = n
			} else if n != want {
				errs <- fmt.Errorf("join worker: open orders = %d, want %d", n, want)
				return
			}
		}
	}()

	// Policy churn: every switch drains the submission epoch the queries
	// are injected through.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pols := anydb.Policies()
		for i := 0; time.Now().Before(deadline); i++ {
			if err := c.SetPolicy(bg, pols[i%len(pols)]); err != nil {
				errs <- fmt.Errorf("policy churn: %v", err)
				return
			}
		}
	}()

	// Live repartitioning: bounce each warehouse between the two servers
	// while scans are in flight at the owners.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			if err := c.Rebalance(bg, i%cfg.Warehouses, i%2); err != nil {
				errs <- fmt.Errorf("rebalance: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("consistency after churn: %v", err)
	}
	c.Close()
	assertBalanced()
}

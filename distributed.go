package anydb

// Head side of the multi-process deployment (Config.Listen +
// Config.RemoteServers): member join handshake, the router goroutines
// that drain remote-AC outboxes onto the peer connections, the relay of
// inbound wire messages into the local engine, and the partition
// migration RPCs that back cross-process Rebalance/Verify/Close. The
// member side lives in node.go (ServeNode).

import (
	"errors"
	"fmt"
	"net"
	"time"

	"anydb/internal/core"
	"anydb/internal/transport"
)

// member is one joined member process: its connection and the topology
// server slot whose ACs it hosts.
type member struct {
	peer   *transport.Peer
	server int
}

// joinTimeout bounds how long Open waits for all members to dial in;
// rpcTimeout bounds one partition-migration round trip.
const (
	joinTimeout = 60 * time.Second
	rpcTimeout  = 30 * time.Second
)

// addRemoteServers validates the distributed config, advertises the
// member servers in the topology and opens the listener — called from
// Open before partition owners are assigned, so members can own
// partitions from the start.
func (c *Cluster) addRemoteServers(cfg Config) ([]core.ACID, error) {
	if cfg.Listen == "" {
		return nil, errors.New("anydb: Config.RemoteServers requires Config.Listen")
	}
	if cfg.AutoAdapt || cfg.AutoRebalance {
		return nil, errors.New("anydb: AutoAdapt/AutoRebalance are not supported on a multi-process cluster")
	}
	var remote []core.ACID
	for i := 0; i < cfg.RemoteServers; i++ {
		remote = append(remote, c.topo.AddServer(cfg.CoresPerServer)...)
	}
	c.remoteACs = make([]bool, c.topo.NumACs())
	for _, id := range remote {
		c.remoteACs[id] = true
	}
	c.tokens = transport.NewTokenTable()
	c.rpcWait = make(map[uint64]chan any)
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	return remote, nil
}

// isRemote reports whether an AC is hosted by a member process.
func (c *Cluster) isRemote(id core.ACID) bool {
	return c.remoteACs != nil && id >= 0 && int(id) < len(c.remoteACs) && c.remoteACs[id]
}

// ListenAddr returns the address the head is accepting members on
// (useful with a ":0" Listen config), or "" on a purely local cluster.
func (c *Cluster) ListenAddr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// acceptMembers completes Open on a distributed cluster: accept each
// member, hand it its server slot and the deterministic rebuild recipe
// (Welcome), register router drainers for its ACs, wait until it is
// Ready, then start the inbound serve loops. Members join one at a
// time in server order.
func (c *Cluster) acceptMembers(cfg Config) error {
	owners := make([]int, c.cfg.Warehouses)
	for w := range owners {
		owners[w] = int(c.topo.Owner(w))
	}
	deadline := time.Now().Add(joinTimeout)
	err := func() error {
		for i := 0; i < cfg.RemoteServers; i++ {
			if tl, ok := c.ln.(*net.TCPListener); ok {
				tl.SetDeadline(deadline)
			}
			conn, err := c.ln.Accept()
			if err != nil {
				return fmt.Errorf("anydb: waiting for member %d/%d: %w", i+1, cfg.RemoteServers, err)
			}
			peer := transport.NewPeer(conn, c.tokens)
			hello, err := peer.ReadControl()
			if err != nil {
				peer.Close()
				return fmt.Errorf("anydb: member handshake: %w", err)
			}
			if h, ok := hello.(*transport.Hello); !ok || h.Proto != transport.ProtoVersion {
				peer.Close()
				return fmt.Errorf("anydb: member handshake: unexpected %#v", hello)
			}
			server := cfg.Servers + i
			if err := peer.WriteControl(&transport.Welcome{
				Proto: transport.ProtoVersion, Server: server,
				Servers: cfg.Servers + cfg.RemoteServers, Cores: cfg.CoresPerServer,
				TC: c.cfg, Owners: owners,
			}); err != nil {
				peer.Close()
				return err
			}
			// The member's ACs get engine outboxes now: anything routed at
			// them buffers until the drainers flush it over the wire.
			for _, id := range c.topo.ACs(server) {
				peer.StartDrainer(id, c.eng.RegisterRemote(id))
			}
			ready, err := peer.ReadControl()
			if err != nil {
				peer.Close()
				return fmt.Errorf("anydb: member %d ready: %w", server, err)
			}
			if _, ok := ready.(*transport.Ready); !ok {
				peer.Close()
				return fmt.Errorf("anydb: member %d: expected Ready, got %#v", server, ready)
			}
			c.peers = append(c.peers, &member{peer: peer, server: server})
		}
		return nil
	}()
	if err != nil {
		for _, m := range c.peers {
			m.peer.Close()
		}
		return err
	}
	if tl, ok := c.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	for _, m := range c.peers {
		c.serveWG.Add(1)
		go func(m *member) {
			defer c.serveWG.Done()
			_ = m.peer.Serve(c.remoteMsg, c.remoteCtrl)
		}(m)
	}
	return nil
}

// remoteMsg relays one decoded inbound message into the local engine.
// ClientAC-destined events resolve through the client callback exactly
// like a local completion; everything else lands in the destination's
// mailbox — which, for a message between two members, is another
// remote-AC outbox, so the head transparently relays member→member
// traffic.
func (c *Cluster) remoteMsg(dst core.ACID, m any) {
	switch v := m.(type) {
	case *core.Event:
		if dst == core.ClientAC {
			c.eng.InjectClient(v)
			return
		}
		c.eng.Inject(dst, v)
	case *core.DataMsg:
		c.eng.InjectData(dst, v)
	}
}

// remoteCtrl handles inbound control messages on the head: the only
// ones members originate are partition-migration replies.
func (c *Cluster) remoteCtrl(v any) error {
	switch msg := v.(type) {
	case *transport.PartSnap:
		c.rpcDeliver(msg.Ref, msg)
	case *transport.PartAck:
		c.rpcDeliver(msg.Ref, msg)
	}
	return nil
}

func (c *Cluster) rpcDeliver(ref uint64, v any) {
	c.rpcMu.Lock()
	ch := c.rpcWait[ref]
	delete(c.rpcWait, ref)
	c.rpcMu.Unlock()
	if ch != nil {
		ch <- v
	}
}

// rpc sends one control request to a member and blocks for its reply
// (matched by Ref).
func (c *Cluster) rpc(m *member, build func(ref uint64) any) (any, error) {
	ref := c.rpcSeq.Add(1)
	ch := make(chan any, 1)
	c.rpcMu.Lock()
	c.rpcWait[ref] = ch
	c.rpcMu.Unlock()
	if err := m.peer.WriteControl(build(ref)); err != nil {
		c.rpcMu.Lock()
		delete(c.rpcWait, ref)
		c.rpcMu.Unlock()
		return nil, err
	}
	select {
	case v := <-ch:
		return v, nil
	case <-time.After(rpcTimeout):
		c.rpcMu.Lock()
		delete(c.rpcWait, ref)
		c.rpcMu.Unlock()
		return nil, fmt.Errorf("anydb: member %d: partition rpc timed out", m.server)
	}
}

// memberOf resolves the member connection hosting an AC.
func (c *Cluster) memberOf(id core.ACID) *member {
	s := c.topo.ServerOf(id)
	for _, m := range c.peers {
		if m.server == s {
			return m
		}
	}
	return nil
}

// pullPartition refreshes the head's copy of one remote-owned partition.
func (c *Cluster) pullPartition(m *member, w int) error {
	v, err := c.rpc(m, func(ref uint64) any { return &transport.PartReq{Ref: ref, W: w} })
	if err != nil {
		return err
	}
	snap, ok := v.(*transport.PartSnap)
	if !ok {
		return fmt.Errorf("anydb: partition %d: unexpected rpc reply %T", w, v)
	}
	return transport.InstallPartition(c.db, w, snap.Tables)
}

// migratePartition is the cross-process leg of moveWarehouse, running
// inside the drained quiet window: pull the live rows home when the
// source owner is remote, push the fresh copy out when the destination
// is, then broadcast the ownership flip so every process's topology
// snapshot reroutes identically. The caller flips the head's own
// topology afterwards.
func (c *Cluster) migratePartition(w int, dst core.ACID) error {
	if src := c.topo.Owner(w); c.isRemote(src) {
		m := c.memberOf(src)
		if m == nil {
			return fmt.Errorf("anydb: no member connection for AC %d", src)
		}
		if err := c.pullPartition(m, w); err != nil {
			return err
		}
	}
	if c.isRemote(dst) {
		m := c.memberOf(dst)
		if m == nil {
			return fmt.Errorf("anydb: no member connection for AC %d", dst)
		}
		tables := transport.SnapshotPartition(c.db, w)
		v, err := c.rpc(m, func(ref uint64) any { return &transport.PartInstall{Ref: ref, W: w, Tables: tables} })
		if err != nil {
			return err
		}
		ack, ok := v.(*transport.PartAck)
		if !ok {
			return fmt.Errorf("anydb: partition %d: unexpected rpc reply %T", w, v)
		}
		if ack.Err != "" {
			return fmt.Errorf("anydb: partition %d install on member %d: %s", w, m.server, ack.Err)
		}
	}
	for _, m := range c.peers {
		if err := m.peer.WriteControl(&transport.OwnerUpdate{W: w, AC: int(dst)}); err != nil {
			return err
		}
	}
	return nil
}

// pullRemotePartitions brings every remote-owned partition's live rows
// into the head database — Verify and Close check TPC-C consistency
// against the head's copy. Caller holds the drained quiet plane.
func (c *Cluster) pullRemotePartitions() error {
	if c.remoteACs == nil {
		return nil
	}
	for w := 0; w < c.cfg.Warehouses; w++ {
		owner := c.topo.Owner(w)
		if !c.isRemote(owner) {
			continue
		}
		m := c.memberOf(owner)
		if m == nil {
			return fmt.Errorf("anydb: no member connection for AC %d", owner)
		}
		if err := c.pullPartition(m, w); err != nil {
			return err
		}
	}
	return nil
}

package anydb

// Head side of the multi-process deployment (Config.Listen +
// Config.RemoteServers): member join handshake, the router goroutines
// that drain remote-AC outboxes onto the peer connections, the relay of
// inbound wire messages into the local engine, and the partition
// migration RPCs that back cross-process Rebalance/Verify/Close. The
// member side lives in node.go (ServeNode).

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"anydb/internal/core"
	"anydb/internal/oltp"
	"anydb/internal/transport"
)

// member is one joined member process: its connection and the topology
// server slot whose ACs it hosts.
type member struct {
	peer   *transport.Peer
	server int
	// down latches once the head gives up on the member (grace expired
	// without a rejoin): its partitions were pulled home and every
	// in-flight token against it resolved with ErrMemberDown.
	down atomic.Bool
	// rejoinCh hands a freshly redialed connection from the rejoin
	// accept loop to the member's serve goroutine, which splices it in.
	rejoinCh chan net.Conn
}

// joinTimeout bounds how long Open waits for all members to dial in;
// rpcTimeout bounds one partition-migration round trip.
const (
	joinTimeout = 60 * time.Second
	rpcTimeout  = 30 * time.Second
)

// addRemoteServers validates the distributed config, advertises the
// member servers in the topology and opens the listener — called from
// Open before partition owners are assigned, so members can own
// partitions from the start.
func (c *Cluster) addRemoteServers(cfg Config) ([]core.ACID, error) {
	if cfg.Listen == "" {
		return nil, errors.New("anydb: Config.RemoteServers requires Config.Listen")
	}
	if cfg.AutoAdapt || cfg.AutoRebalance {
		return nil, errors.New("anydb: AutoAdapt/AutoRebalance are not supported on a multi-process cluster")
	}
	var remote []core.ACID
	for i := 0; i < cfg.RemoteServers; i++ {
		remote = append(remote, c.topo.AddServer(cfg.CoresPerServer)...)
	}
	c.remoteACs = make([]bool, c.topo.NumACs())
	for _, id := range remote {
		c.remoteACs[id] = true
	}
	c.tokens = transport.NewTokenTable()
	c.rpcWait = make(map[uint64]chan any)
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	return remote, nil
}

// isRemote reports whether an AC is hosted by a member process.
func (c *Cluster) isRemote(id core.ACID) bool {
	return c.remoteACs != nil && id >= 0 && int(id) < len(c.remoteACs) && c.remoteACs[id]
}

// ListenAddr returns the address the head is accepting members on
// (useful with a ":0" Listen config), or "" on a purely local cluster.
func (c *Cluster) ListenAddr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// acceptMembers completes Open on a distributed cluster: accept each
// member, hand it its server slot and the deterministic rebuild recipe
// (Welcome), register router drainers for its ACs, wait until it is
// Ready, then start the inbound serve loops. Members join one at a
// time in server order.
func (c *Cluster) acceptMembers(cfg Config) error {
	owners := make([]int, c.cfg.Warehouses)
	for w := range owners {
		owners[w] = int(c.topo.Owner(w))
	}
	deadline := time.Now().Add(joinTimeout)
	err := func() error {
		for i := 0; i < cfg.RemoteServers; i++ {
			if tl, ok := c.ln.(*net.TCPListener); ok {
				tl.SetDeadline(deadline)
			}
			conn, err := c.ln.Accept()
			if err != nil {
				return fmt.Errorf("anydb: waiting for member %d/%d: %w", i+1, cfg.RemoteServers, err)
			}
			peer := transport.NewPeer(conn, c.tokens)
			hello, err := peer.ReadControl()
			if err != nil {
				peer.Close()
				return fmt.Errorf("anydb: member handshake: %w", err)
			}
			if h, ok := hello.(*transport.Hello); !ok || h.Proto != transport.ProtoVersion {
				peer.Close()
				return fmt.Errorf("anydb: member handshake: unexpected %#v", hello)
			}
			server := cfg.Servers + i
			peer.SetOwner(server)
			peer.OnDead = c.deadMsg
			if err := peer.WriteControl(&transport.Welcome{
				Proto: transport.ProtoVersion, Server: server,
				Servers: cfg.Servers + cfg.RemoteServers, Cores: cfg.CoresPerServer,
				TC: c.cfg, Owners: owners,
				HeartbeatNs: c.heartbeat.Nanoseconds(),
			}); err != nil {
				peer.Close()
				return err
			}
			// The member's ACs get engine outboxes now: anything routed at
			// them buffers until the drainers flush it over the wire.
			for _, id := range c.topo.ACs(server) {
				peer.StartDrainer(id, c.eng.RegisterRemote(id))
			}
			ready, err := peer.ReadControl()
			if err != nil {
				peer.Close()
				return fmt.Errorf("anydb: member %d ready: %w", server, err)
			}
			if _, ok := ready.(*transport.Ready); !ok {
				peer.Close()
				return fmt.Errorf("anydb: member %d: expected Ready, got %#v", server, ready)
			}
			c.peers = append(c.peers, &member{
				peer: peer, server: server,
				rejoinCh: make(chan net.Conn, 1),
			})
		}
		return nil
	}()
	if err != nil {
		for _, m := range c.peers {
			m.peer.Close()
		}
		return err
	}
	if tl, ok := c.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	for _, m := range c.peers {
		if c.heartbeat > 0 {
			// Arm the read watchdog only now, after every member joined:
			// during the serial join a member can sit frame-less for as
			// long as its siblings take to populate.
			m.peer.SetReadTimeout(3 * c.heartbeat)
			c.serveWG.Add(1)
			go c.pingMember(m)
		}
		c.serveWG.Add(1)
		go c.serveMember(m)
	}
	// Catch members redialing after a connection break.
	c.serveWG.Add(1)
	go c.acceptRejoins()
	if c.walApplied > 0 {
		// Recovery replayed logged transactions into the head database
		// after the members captured their deterministic seed, so their
		// copies of the partitions they own are stale: push them fresh
		// snapshots before any traffic flows.
		if err := c.pushReplayedPartitions(); err != nil {
			return err
		}
	}
	return nil
}

// pushReplayedPartitions installs the head's post-recovery copy of
// every member-owned partition on its owner. Runs right after join,
// before Open returns — the cluster is quiet.
func (c *Cluster) pushReplayedPartitions() error {
	for w := 0; w < c.cfg.Warehouses; w++ {
		owner := c.topo.Owner(w)
		if !c.isRemote(owner) {
			continue
		}
		m := c.memberOf(owner)
		if m == nil {
			return fmt.Errorf("anydb: no member connection for AC %d", owner)
		}
		tables := transport.SnapshotPartition(c.db, w)
		v, err := c.rpc(m, func(ref uint64) any { return &transport.PartInstall{Ref: ref, W: w, Tables: tables} })
		if err != nil {
			return err
		}
		if ack, ok := v.(*transport.PartAck); !ok {
			return fmt.Errorf("anydb: partition %d: unexpected rpc reply %T", w, v)
		} else if ack.Err != "" {
			return fmt.Errorf("anydb: partition %d install on member %d: %s", w, m.server, ack.Err)
		}
	}
	return nil
}

// pingMember keeps the liveness heartbeat flowing toward one member.
// Writes to a dead peer fail fast and are ignored; after a rejoin the
// pings land on the spliced connection automatically.
func (c *Cluster) pingMember(m *member) {
	defer c.serveWG.Done()
	t := time.NewTicker(c.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = m.peer.WriteControl(&transport.Ping{})
		case <-c.closedCh:
			return
		}
	}
}

// serveMember runs one member's inbound serve loop, restarting it
// across connection breaks. A break immediately fails everything in
// flight against the member (segments already sent may or may not have
// arrived — the only honest answer is a typed error), then the member
// gets MemberGrace to redial; a rejoin splices the fresh connection and
// resumes, expiry declares it dead and pulls its partitions home.
func (c *Cluster) serveMember(m *member) {
	defer c.serveWG.Done()
	for {
		_ = m.peer.Serve(c.remoteMsg, c.remoteCtrl)
		if c.closed.Load() {
			return
		}
		c.failTransit(m)
		select {
		case conn := <-m.rejoinCh:
			// Commit to the rejoin: RejoinOK must be the first frame on
			// the new connection (the member reads it before resuming),
			// so write it before splicing — drainers resume only after
			// SetConn clears the dead mark.
			tmp := transport.NewPeer(conn, nil)
			if err := tmp.WriteControl(&transport.RejoinOK{}); err != nil {
				conn.Close()
				continue // still inside the grace of the next break
			}
			m.peer.SetConn(conn)
			continue
		case <-time.After(c.memberGrace):
		case <-c.closedCh:
			return
		}
		c.failMember(m)
		// A redial racing the expiry may have parked a connection;
		// nobody will splice it now.
		select {
		case conn := <-m.rejoinCh:
			conn.Close()
		default:
		}
		return
	}
}

// acceptRejoins accepts redials from disconnected members for the life
// of the cluster and hands each to its member's serve goroutine. Exits
// when Close shuts the listener.
func (c *Cluster) acceptRejoins() {
	defer c.serveWG.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			tmp := transport.NewPeer(conn, nil)
			conn.SetReadDeadline(time.Now().Add(joinTimeout))
			hello, err := tmp.ReadControl()
			if err != nil {
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			h, ok := hello.(*transport.Hello)
			if !ok || h.Proto != transport.ProtoVersion || !h.Rejoin {
				conn.Close()
				return
			}
			for _, m := range c.peers {
				if m.server == h.Server && !m.down.Load() {
					select {
					case m.rejoinCh <- conn:
						return
					default: // a previous redial is already parked
					}
					break
				}
			}
			conn.Close()
		}(conn)
	}
}

// failTransit resolves everything in flight against a disconnected
// member with ErrMemberDown: future traffic diverts to deadMsg, every
// outstanding client token against it converts to a synthetic failure
// ack, and in-flight analytical queries (whose scans spanned it) fail.
// The member itself may still rejoin for future traffic.
func (c *Cluster) failTransit(m *member) {
	// Order matters: MarkDead first (under the write lock, so no token
	// can be issued toward the member afterwards), then sweep — the
	// sweep is complete by construction.
	m.peer.MarkDead()
	for _, ft := range c.tokens.FailOwner(m.server) {
		c.failToken(ft)
	}
	c.failQueries()
}

// failMember declares a member dead: partitions it owned are pulled
// home to the head's executors so subsequent submissions and queries
// succeed. The head's copy is the best surviving replica — writes the
// member applied after its last pull are lost (k-way replication is the
// ROADMAP follow-up; a dead member's recent effects are not recoverable
// from a single copy).
func (c *Cluster) failMember(m *member) {
	if !m.down.CompareAndSwap(false, true) {
		return
	}
	c.adoptPartitions(m)
}

// failToken converts one swept client token into a synthetic failure
// ack injected at the transaction's coordinator, exactly as the dead
// executor's real ack would have arrived. The coordinator's pending
// count converges (live members' real acks + these) and the submitter's
// future resolves once, with ErrMemberDown.
func (c *Cluster) failToken(ft transport.FailedToken) {
	if !ft.HasAck {
		// Not a segment token — nothing on the ack plane references it.
		return
	}
	ack := oltp.GetAck()
	ack.Total, ack.Home, ack.Client, ack.Err = ft.Ack.Total, ft.Ack.Home, ft.Value, ErrMemberDown
	ev := core.GetEvent()
	ev.Kind, ev.Txn, ev.Payload = core.EvAck, ft.Ack.ID, ack
	c.eng.Inject(ft.Ack.Coord, ev)
}

// deadMsg consumes a message diverted from a dead peer's write path
// (transport.Peer.OnDead). A diverted segment never reached the
// encoder, so no client token exists for it and the FailOwner sweep
// cannot cover it — it becomes a synthetic failure ack right here.
// Everything else just returns to the pools.
func (c *Cluster) deadMsg(msg any) {
	if dm, ok := msg.(*core.DataMsg); ok {
		// A stream batch toward the dead member: its query can never
		// complete — fail it now (queries submitted inside the grace
		// window reach here; failTransit's sweep only saw the ones in
		// flight at the break).
		qid := dm.Query
		transport.FreeLocal(msg)
		c.failQuery(qid)
		return
	}
	ev, ok := msg.(*core.Event)
	if !ok {
		transport.FreeLocal(msg)
		return
	}
	if ev.Kind != core.EvSegment {
		qid := ev.Query
		transport.FreeLocal(msg)
		if qid != 0 {
			// A query-plan event (scan install, collector op, ...)
			// toward the dead member: fail the whole query.
			c.failQuery(qid)
		}
		return
	}
	seg, ok := ev.Payload.(*oltp.Segment)
	if !ok {
		transport.FreeLocal(msg)
		return
	}
	ack := oltp.GetAck()
	ack.Total, ack.Client, ack.Err = seg.Total, seg.Client, ErrMemberDown
	if len(seg.Ops) > 0 {
		ack.Home = seg.Ops[0].Warehouse()
	}
	ackEv := core.GetEvent()
	ackEv.Kind, ackEv.Txn, ackEv.Payload = core.EvAck, ev.Txn, ack
	coord := seg.Coord
	ev.Payload = nil
	oltp.FreeSegment(seg)
	core.FreeEvent(ev)
	c.eng.Inject(coord, ackEv)
}

// adoptPartitions pulls every partition the dead member owned home to
// the head's executors, one drained quiet window per partition: gate
// overlapping submissions, wait for the in-flight count on the
// warehouse to hit zero (failTransit already resolved everything that
// involved the dead member, so it drains), flip ownership, broadcast.
func (c *Cluster) adoptPartitions(m *member) {
	for w := 0; w < c.cfg.Warehouses; w++ {
		owner := c.topo.Owner(w)
		if c.topo.ServerOf(owner) != m.server {
			continue
		}
		c.adoptPartition(w, c.execs[w%len(c.execs)], m)
	}
}

func (c *Cluster) adoptPartition(w int, dst core.ACID, dead *member) {
	c.switchMu.Lock()
	defer c.switchMu.Unlock()
	if c.closed.Load() {
		return
	}
	mask := whBit(w) | queryMask
	g := &moveGate{mask: mask, reopen: make(chan struct{})}
	c.gate.Store(g)
	if err := c.drainPartitionLocked(context.Background(), mask); err == nil {
		// The head's copy becomes live. Handoff publishes the owner flip
		// to the storage layer; OwnerUpdate reroutes surviving members.
		c.db.Partition(w).Handoff(int64(dst))
		c.topo.SetOwner(w, dst)
		for _, other := range c.peers {
			if other == dead || other.down.Load() {
				continue
			}
			_ = other.peer.WriteControl(&transport.OwnerUpdate{W: w, AC: int(dst)})
		}
	}
	c.gate.Store(nil)
	close(g.reopen)
}

// remoteMsg relays one decoded inbound message into the local engine.
// ClientAC-destined events resolve through the client callback exactly
// like a local completion; everything else lands in the destination's
// mailbox — which, for a message between two members, is another
// remote-AC outbox, so the head transparently relays member→member
// traffic.
func (c *Cluster) remoteMsg(dst core.ACID, m any) {
	switch v := m.(type) {
	case *core.Event:
		if v.Kind == core.EvAck {
			if a, ok := v.Payload.(*oltp.Ack); ok {
				if _, stale := a.Client.(transport.Token); stale {
					// The ack's client token was already retired: its
					// transaction was force-completed by a FailOwner
					// sweep, and this is the real executor's ack
					// arriving late (a member that rejoined flushes
					// its pre-break outbox). Feeding it onward would
					// re-create pending state for a finished
					// transaction.
					v.Payload = nil
					oltp.FreeAck(a)
					core.FreeEvent(v)
					return
				}
			}
		}
		if dst == core.ClientAC {
			c.eng.InjectClient(v)
			return
		}
		c.eng.Inject(dst, v)
	case *core.DataMsg:
		c.eng.InjectData(dst, v)
	}
}

// remoteCtrl handles inbound control messages on the head: the only
// ones members originate are partition-migration replies.
func (c *Cluster) remoteCtrl(v any) error {
	switch msg := v.(type) {
	case *transport.PartSnap:
		c.rpcDeliver(msg.Ref, msg)
	case *transport.PartAck:
		c.rpcDeliver(msg.Ref, msg)
	case *transport.Ping:
		// Liveness heartbeat: arrival alone fed the read watchdog.
	}
	return nil
}

func (c *Cluster) rpcDeliver(ref uint64, v any) {
	c.rpcMu.Lock()
	ch := c.rpcWait[ref]
	delete(c.rpcWait, ref)
	c.rpcMu.Unlock()
	if ch != nil {
		ch <- v
	}
}

// rpc sends one control request to a member and blocks for its reply
// (matched by Ref).
func (c *Cluster) rpc(m *member, build func(ref uint64) any) (any, error) {
	ref := c.rpcSeq.Add(1)
	ch := make(chan any, 1)
	c.rpcMu.Lock()
	c.rpcWait[ref] = ch
	c.rpcMu.Unlock()
	if err := m.peer.WriteControl(build(ref)); err != nil {
		c.rpcMu.Lock()
		delete(c.rpcWait, ref)
		c.rpcMu.Unlock()
		return nil, err
	}
	select {
	case v := <-ch:
		return v, nil
	case <-time.After(rpcTimeout):
		c.rpcMu.Lock()
		delete(c.rpcWait, ref)
		c.rpcMu.Unlock()
		return nil, fmt.Errorf("anydb: member %d: partition rpc timed out", m.server)
	}
}

// memberOf resolves the member connection hosting an AC.
func (c *Cluster) memberOf(id core.ACID) *member {
	s := c.topo.ServerOf(id)
	for _, m := range c.peers {
		if m.server == s {
			return m
		}
	}
	return nil
}

// pullPartition refreshes the head's copy of one remote-owned partition.
func (c *Cluster) pullPartition(m *member, w int) error {
	v, err := c.rpc(m, func(ref uint64) any { return &transport.PartReq{Ref: ref, W: w} })
	if err != nil {
		return err
	}
	snap, ok := v.(*transport.PartSnap)
	if !ok {
		return fmt.Errorf("anydb: partition %d: unexpected rpc reply %T", w, v)
	}
	return transport.InstallPartition(c.db, w, snap.Tables)
}

// migratePartition is the cross-process leg of moveWarehouse, running
// inside the drained quiet window: pull the live rows home when the
// source owner is remote, push the fresh copy out when the destination
// is, then broadcast the ownership flip so every process's topology
// snapshot reroutes identically. The caller flips the head's own
// topology afterwards.
func (c *Cluster) migratePartition(w int, dst core.ACID) error {
	if src := c.topo.Owner(w); c.isRemote(src) {
		m := c.memberOf(src)
		if m == nil {
			return fmt.Errorf("anydb: no member connection for AC %d", src)
		}
		if err := c.pullPartition(m, w); err != nil {
			return err
		}
	}
	if c.isRemote(dst) {
		m := c.memberOf(dst)
		if m == nil {
			return fmt.Errorf("anydb: no member connection for AC %d", dst)
		}
		tables := transport.SnapshotPartition(c.db, w)
		v, err := c.rpc(m, func(ref uint64) any { return &transport.PartInstall{Ref: ref, W: w, Tables: tables} })
		if err != nil {
			return err
		}
		ack, ok := v.(*transport.PartAck)
		if !ok {
			return fmt.Errorf("anydb: partition %d: unexpected rpc reply %T", w, v)
		}
		if ack.Err != "" {
			return fmt.Errorf("anydb: partition %d install on member %d: %s", w, m.server, ack.Err)
		}
	}
	for _, m := range c.peers {
		if err := m.peer.WriteControl(&transport.OwnerUpdate{W: w, AC: int(dst)}); err != nil {
			return err
		}
	}
	return nil
}

// pullRemotePartitions brings every remote-owned partition's live rows
// into the head database — Verify and Close check TPC-C consistency
// against the head's copy. Caller holds the drained quiet plane.
func (c *Cluster) pullRemotePartitions() error {
	if c.remoteACs == nil {
		return nil
	}
	for w := 0; w < c.cfg.Warehouses; w++ {
		owner := c.topo.Owner(w)
		if !c.isRemote(owner) {
			continue
		}
		m := c.memberOf(owner)
		if m == nil {
			return fmt.Errorf("anydb: no member connection for AC %d", owner)
		}
		if err := c.pullPartition(m, w); err != nil {
			return err
		}
	}
	return nil
}

package anydb_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"anydb"
)

// TestSessionBasic: a session submits pipelined payments that all
// commit, with results identical to the session-less path.
func TestSessionBasic(t *testing.T) {
	c := openWide(t, anydb.Config{})
	ctx := context.Background()

	s := c.Session()
	defer s.Close()

	futs := make([]*anydb.Future, 0, 64)
	for i := 0; i < 64; i++ {
		f, err := s.SubmitPayment(ctx, anydb.Payment{
			Warehouse: i % 8, District: 1 + i%2, Customer: 1 + i%50, Amount: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		ok, err := f.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("payment aborted")
		}
	}
	if ok, err := s.NewOrder(anydb.NewOrder{
		Warehouse: 1, District: 1, Customer: 2,
		Lines: []anydb.OrderLine{{Item: 1, Qty: 1, SupplyWarehouse: 1}},
	}); err != nil || !ok {
		t.Fatalf("session new-order: ok=%v err=%v", ok, err)
	}
	var n int64
	if err := c.QueryRow(ctx, "SELECT COUNT(*) FROM warehouse").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("warehouse count = %d, want 8", n)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionClosed pins the lifecycle contract: Close is idempotent,
// every method on a closed session reports ErrSessionClosed, and
// futures issued before Close stay valid.
func TestSessionClosed(t *testing.T) {
	c := openWide(t, anydb.Config{})
	ctx := context.Background()

	s := c.Session()
	f, err := s.SubmitPayment(ctx, anydb.Payment{Warehouse: 1, District: 1, Customer: 1, Amount: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // double close is a no-op

	// The in-flight future detached from the session and still resolves.
	if ok, err := f.Wait(ctx); err != nil || !ok {
		t.Fatalf("pre-close future: ok=%v err=%v", ok, err)
	}

	if _, err := s.SubmitPayment(ctx, anydb.Payment{Warehouse: 1, District: 1, Customer: 1, Amount: 1}); !errors.Is(err, anydb.ErrSessionClosed) {
		t.Fatalf("SubmitPayment after close: err=%v, want ErrSessionClosed", err)
	}
	if _, err := s.SubmitNewOrder(ctx, anydb.NewOrder{
		Warehouse: 1, District: 1, Customer: 1,
		Lines: []anydb.OrderLine{{Item: 1, Qty: 1, SupplyWarehouse: 1}},
	}); !errors.Is(err, anydb.ErrSessionClosed) {
		t.Fatalf("SubmitNewOrder after close: err=%v, want ErrSessionClosed", err)
	}
	if _, err := s.Query(ctx, "SELECT COUNT(*) FROM warehouse"); !errors.Is(err, anydb.ErrSessionClosed) {
		t.Fatalf("Query after close: err=%v, want ErrSessionClosed", err)
	}
}

// TestSessionPolicyChurn: sessions opened before a wave of SetPolicy
// switches keep submitting through every epoch transition — each
// switch invalidates the cached epoch, so every worker exercises the
// re-pin path many times. Run under -race this also proves the
// freelist recycling never crosses goroutines.
func TestSessionPolicyChurn(t *testing.T) {
	assertBalanced := trackPools(t)
	c := openWide(t, anydb.Config{})
	ctx := context.Background()

	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.Session()
			defer s.Close()
			futs := make([]*anydb.Future, 0, 16)
			for i := 0; ; i++ {
				select {
				case <-stop:
					for _, f := range futs {
						f.Wait(ctx)
					}
					return
				default:
				}
				f, err := s.SubmitPayment(ctx, anydb.Payment{
					Warehouse: (w + i) % 8, District: 1 + i%2, Customer: 1 + i%50, Amount: 1,
				})
				if err != nil {
					errCh <- err
					return
				}
				futs = append(futs, f)
				if len(futs) == cap(futs) {
					for _, f := range futs {
						if _, err := f.Wait(ctx); err != nil {
							errCh <- err
							return
						}
					}
					futs = futs[:0]
				}
			}
		}(w)
	}

	policies := []anydb.Policy{anydb.NaiveIntra, anydb.PreciseIntra, anydb.StreamingCC, anydb.SharedNothing}
	for i := 0; i < 12; i++ {
		if err := c.SetPolicy(ctx, policies[i%len(policies)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if n := c.Stats().UnmatchedDone; n != 0 {
		t.Fatalf("UnmatchedDone = %d, want 0", n)
	}
	c.Close()
	assertBalanced()
}

// TestSessionRebalanceRepins: a session hammering one warehouse keeps
// flowing while that exact warehouse is moved between servers — the
// partition gate forces the session's fast path to back out, park, and
// re-pin, and every submission must still commit exactly once.
func TestSessionRebalanceRepins(t *testing.T) {
	c := openWide(t, anydb.Config{Servers: 2})
	ctx := context.Background()

	const moving = 2
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := c.Session()
		defer s.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f, err := s.SubmitPayment(ctx, anydb.Payment{
				Warehouse: moving, District: 1 + i%2, Customer: 1 + i%50, Amount: 1,
			})
			if err != nil {
				errCh <- err
				return
			}
			if _, err := f.Wait(ctx); err != nil {
				errCh <- err
				return
			}
		}
	}()

	for i := 0; i < 4; i++ {
		target := (i + 1) % 2
		if err := c.Rebalance(ctx, moving, target); err != nil {
			t.Fatalf("rebalance %d -> server %d: %v", moving, target, err)
		}
		if got := c.Placement()[moving]; got != target {
			t.Fatalf("placement[%d] = %d after move, want %d", moving, got, target)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if n := c.Stats().UnmatchedDone; n != 0 {
		t.Fatalf("UnmatchedDone = %d, want 0", n)
	}
}

// TestSessionClusterClosed: sessions outlive policy switches but not
// the cluster — after Cluster.Close a session submit reports ErrClosed.
func TestSessionClusterClosed(t *testing.T) {
	c := openWide(t, anydb.Config{})
	s := c.Session()
	defer s.Close()
	c.Close()
	_, err := s.SubmitPayment(context.Background(), anydb.Payment{Warehouse: 1, District: 1, Customer: 1, Amount: 1})
	if !errors.Is(err, anydb.ErrClosed) {
		t.Fatalf("submit after cluster close: err=%v, want ErrClosed", err)
	}
}
